//! The simulation engine: spawning, scheduling, and running simulated
//! threads deterministically.

use crate::config::{SchedulerKind, SimConfig};
use crate::ctx::{Grant, StopToken, ThreadCtx, YieldReason};
use crate::kernel::Kernel;
use crate::report::RunReport;
use ace_machine::{CpuId, HardFault, Machine, Ns, Prot};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mach_vm::VAddr;
use numa_core::{AcePmap, CachePolicy};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A closure waiting to be run as a simulated thread.
struct PendingThread {
    name: String,
    body: Box<dyn FnOnce(&mut ThreadCtx) + Send + 'static>,
}

/// Runs one complete simulation from one configuration: boots a
/// simulator for `cfg` and `policy`, hands it to `body` (which
/// allocates, spawns and drives an application to completion), and
/// returns the run's report.
///
/// This is the single-config entry point the `numa-lab` worker farm
/// calls once per sweep cell; unlike the panicking harness helpers it
/// propagates the application's verification failure as a typed `Err`,
/// so a wrong answer in one grid cell surfaces as that cell's error
/// instead of tearing down the whole sweep.
pub fn run_one(
    cfg: SimConfig,
    policy: Box<dyn CachePolicy>,
    body: impl FnOnce(&mut Simulator) -> Result<(), String>,
) -> Result<RunReport, String> {
    let budget = cfg.vt_budget;
    let mut sim = Simulator::new(cfg, policy);
    let result = body(&mut sim);
    if sim.vt_exceeded() {
        // The budget abort truncates the run, so any verification
        // failure in `body` is a symptom; report the cause.
        let b = budget.map(|n| n.0).unwrap_or(0);
        return Err(format!("virtual-time budget of {b} ns exceeded"));
    }
    result?;
    Ok(sim.report())
}

/// The user-facing simulator: build a machine, allocate memory, spawn
/// threads, run, inspect.
///
/// # Examples
///
/// ```
/// use ace_machine::Prot;
/// use ace_sim::{SimConfig, Simulator};
/// use numa_core::MoveLimitPolicy;
///
/// let mut sim = Simulator::new(SimConfig::small(2), Box::new(MoveLimitPolicy::default()));
/// let a = sim.alloc(256, Prot::READ_WRITE);
/// sim.spawn("writer", move |ctx| ctx.write_u32(a, 7));
/// let report = sim.run();
/// assert_eq!(sim.with_kernel(|k| k.peek_u32(a)), 7);
/// assert!(report.total_user() > ace_machine::Ns::ZERO);
/// ```
pub struct Simulator {
    cfg: SimConfig,
    kernel: Arc<Mutex<Kernel>>,
    pending: Vec<PendingThread>,
    /// Next processor for sequential affinity assignment.
    next_cpu: usize,
    /// True once a run was cut short by the virtual-time budget.
    vt_exceeded: bool,
    /// Serving-workload measurements attached by the application (see
    /// [`Simulator::attach_serving`]); `None` for every batch workload.
    serving: Option<numa_metrics::ServingReport>,
}

impl Simulator {
    /// Boots a simulator with the given placement policy. If the config
    /// carries an event sink, the machine's tap and the NUMA manager's
    /// sink are both wired to it, so the sink sees the full stream —
    /// bus traffic and protocol actions alike — in virtual-time order
    /// per processor.
    pub fn new(cfg: SimConfig, policy: Box<dyn CachePolicy>) -> Simulator {
        let mut machine = Machine::new(cfg.machine.clone());
        let mut pmap = AcePmap::new(policy);
        if let Some(sink) = &cfg.events {
            let tap_sink = Arc::clone(sink);
            machine.set_tap(Box::new(move |me| {
                let ev = numa_metrics::Event::from(me);
                tap_sink.lock().expect("event sink poisoned").record(&ev);
            }));
            pmap.set_event_sink(Arc::clone(sink));
        }
        pmap.set_max_reclaim_attempts(cfg.max_reclaim_attempts);
        let kernel = Kernel::new(machine, pmap);
        Simulator {
            cfg,
            kernel: Arc::new(Mutex::new(kernel)),
            pending: Vec::new(),
            next_cpu: 0,
            vt_exceeded: false,
            serving: None,
        }
    }

    /// Attaches serving-workload measurements (request counts, tail
    /// latency) to every subsequent [`Simulator::report`]. Only serving
    /// applications call this, so batch runs keep the exact report
    /// shape they had before the serving subsystem existed.
    pub fn attach_serving(&mut self, serving: numa_metrics::ServingReport) {
        self.serving = Some(serving);
    }

    /// True if any run so far was cut short by the configured
    /// virtual-time budget (the report then covers a truncated run).
    pub fn vt_exceeded(&self) -> bool {
        self.vt_exceeded
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Allocates zero-filled application memory (harness-level
    /// `vm_allocate`).
    pub fn alloc(&self, bytes: u64, prot: Prot) -> VAddr {
        self.kernel
            .lock()
            .alloc(bytes, prot)
            .expect("application allocation failed")
    }

    /// Frees an allocation made with [`Simulator::alloc`] (harness-level
    /// `vm_deallocate`): its logical pages go through the lazy
    /// `pmap_free_page` path and their placement history is forgotten.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not the base of a live allocation.
    pub fn dealloc(&self, addr: VAddr) {
        self.kernel.lock().dealloc(addr).expect("deallocating a live allocation")
    }

    /// Runs `f` with the kernel locked (inspection and setup).
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.kernel.lock())
    }

    /// Queues a simulated thread for the next [`Simulator::run`].
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut ThreadCtx) + Send + 'static,
    ) {
        self.pending.push(PendingThread { name: name.into(), body: Box::new(body) });
    }

    /// Runs every queued thread to completion and reports what was
    /// measured. May be called repeatedly: kernel state (memory
    /// contents, placement, clocks) persists across runs.
    pub fn run(&mut self) -> RunReport {
        let pending = std::mem::take(&mut self.pending);
        if !pending.is_empty() {
            let n_cpus = self.cfg.machine.n_cpus();
            let mut engine = Engine::new(&self.cfg, Arc::clone(&self.kernel), n_cpus);
            engine.next_cpu = self.next_cpu;
            engine.run(pending);
            self.next_cpu = engine.next_cpu;
            self.vt_exceeded |= engine.vt_exceeded;
        }
        self.report()
    }

    /// A report of everything measured so far.
    pub fn report(&self) -> RunReport {
        let k = self.kernel.lock();
        RunReport {
            policy: k.pmap.policy_name(),
            cpu_times: k.machine.clocks.all().to_vec(),
            refs: k.refs,
            numa: k.pmap.stats(),
            bus: k.machine.bus,
            faults: k.machine.fault.stats(),
            serving: self.serving.clone(),
            degraded: None,
        }
    }
}

/// Per-processor scheduler slot.
struct CpuSlot {
    runq: VecDeque<usize>,
    current: Option<usize>,
    quantum_end: Ns,
}

/// State of one simulated thread from the engine's point of view.
struct ThreadSlot {
    grant_tx: Sender<Grant>,
    handle: Option<JoinHandle<()>>,
    done: bool,
    /// The processor the thread was bound to at creation (used by the
    /// affinity scheduler).
    home_cpu: usize,
}

struct Engine {
    kernel: Arc<Mutex<Kernel>>,
    scheduler: SchedulerKind,
    quantum: Ns,
    lookahead: Ns,
    cpus: Vec<CpuSlot>,
    global_q: VecDeque<usize>,
    threads: Vec<ThreadSlot>,
    yield_rx: Receiver<(usize, YieldReason)>,
    yield_tx: Sender<(usize, YieldReason)>,
    alive: usize,
    next_cpu: usize,
    compute_chunk: Ns,
    daemon_interval: Ns,
    next_daemon_tick: Ns,
    page: ace_machine::PageSize,
    fastpath: bool,
    pressure_low: usize,
    pressure_high: usize,
    vt_budget: Option<Ns>,
    vt_exceeded: bool,
    /// Scheduled hard failures not yet fired, ascending by (vt, cpu).
    /// Fired between grants when the minimum runnable clock crosses the
    /// failure's virtual time — the same deterministic trigger as the
    /// daemon tick, so recovery is identical at any `--jobs`.
    pending_hard: Vec<HardFault>,
}

impl Engine {
    fn new(cfg: &SimConfig, kernel: Arc<Mutex<Kernel>>, n_cpus: usize) -> Engine {
        let (yield_tx, yield_rx) = unbounded();
        // Hard failures come from the machine's fault schedule. Sorted
        // ascending so they fire in virtual-time order; already-fired
        // ones (repeated `run()` calls) no-op at the kernel layer.
        let mut pending_hard = kernel.lock().machine.fault.config().hard_faults.clone();
        pending_hard.sort_by_key(|hf| (hf.vt().0, hf.target_index()));
        Engine {
            kernel,
            scheduler: cfg.scheduler,
            quantum: cfg.quantum,
            lookahead: cfg.lookahead,
            cpus: (0..n_cpus)
                .map(|_| CpuSlot { runq: VecDeque::new(), current: None, quantum_end: Ns::ZERO })
                .collect(),
            global_q: VecDeque::new(),
            threads: Vec::new(),
            yield_rx,
            yield_tx,
            alive: 0,
            next_cpu: 0,
            compute_chunk: cfg.compute_chunk,
            daemon_interval: cfg.daemon_interval,
            next_daemon_tick: cfg.daemon_interval,
            page: cfg.machine.page_size,
            fastpath: cfg.fastpath,
            pressure_low: cfg.pressure_low,
            pressure_high: cfg.pressure_high,
            vt_budget: cfg.vt_budget,
            vt_exceeded: false,
            pending_hard,
        }
    }

    /// True if `cpu` was stopped by a `CpuOffline` hard failure.
    fn cpu_dead(&self, cpu: usize) -> bool {
        self.kernel.lock().dead_cpus[cpu]
    }

    /// Fires one scheduled hard failure. Runs between grants, so no
    /// thread is mid-access when the machine changes under it.
    fn fire_hard_fault(&mut self, hf: HardFault) {
        match hf {
            HardFault::NodeOffline { node, .. } => {
                // The node's processors keep executing; their local
                // memory is gone. The kernel runs the online recovery
                // protocol.
                self.kernel.lock().node_offline(node);
            }
            HardFault::CpuOffline { cpu, .. } => {
                let c = cpu.index();
                if self.cpu_dead(c) {
                    return;
                }
                // Drain the dead processor's runnable threads (its
                // parked current thread plus its affinity queue) to
                // survivors, round-robin in drain order — a
                // deterministic re-home. Memory stays online: pages the
                // processor owned migrate away on their next access.
                let mut drained: Vec<usize> = Vec::new();
                if let Some(tid) = self.cpus[c].current.take() {
                    drained.push(tid);
                }
                drained.extend(self.cpus[c].runq.drain(..));
                let mut k = self.kernel.lock();
                k.dead_cpus[c] = true;
                let survivors: Vec<usize> =
                    (0..self.cpus.len()).filter(|&i| !k.dead_cpus[i]).collect();
                assert!(
                    !survivors.is_empty(),
                    "a CpuOffline schedule may not kill every processor"
                );
                let Kernel { machine, pmap, .. } = &mut *k;
                pmap.note_cpu_offline(machine, cpu, drained.len() as u32);
                drop(k);
                for (i, tid) in drained.into_iter().enumerate() {
                    let dst = survivors[i % survivors.len()];
                    self.threads[tid].home_cpu = dst;
                    match self.scheduler {
                        SchedulerKind::Affinity => self.cpus[dst].runq.push_back(tid),
                        SchedulerKind::GlobalQueue => self.global_q.push_back(tid),
                    }
                }
            }
        }
    }

    fn clock_of(&self, cpu: usize) -> Ns {
        self.kernel.lock().clock_of(CpuId::from(cpu))
    }

    fn run(&mut self, pending: Vec<PendingThread>) {
        self.start_threads(pending);
        // Every thread rendezvouses once before running its body; absorb
        // those initial yields and queue the threads.
        for _ in 0..self.threads.len() {
            let (tid, reason) = self.yield_rx.recv().expect("thread vanished at startup");
            match reason {
                YieldReason::Budget => self.enqueue(tid),
                YieldReason::Done | YieldReason::Panicked(_) => {
                    unreachable!("threads rendezvous before running their body")
                }
            }
        }
        let panic_msg = self.schedule_loop();
        self.shutdown();
        if let Some(msg) = panic_msg {
            panic!("simulated thread panicked: {msg}");
        }
    }

    fn start_threads(&mut self, pending: Vec<PendingThread>) {
        for (tid, p) in pending.into_iter().enumerate() {
            let (grant_tx, grant_rx) = bounded::<Grant>(1);
            let yield_tx = self.yield_tx.clone();
            let kernel = Arc::clone(&self.kernel);
            let cpu = self.assign_cpu();
            let chunk = self.compute_chunk;
            let page = self.page;
            let fastpath = self.fastpath;
            let body = p.body;
            let handle = std::thread::Builder::new()
                .name(format!("sim-{}-{}", tid, p.name))
                .spawn(move || {
                    let mut ctx = ThreadCtx {
                        tid,
                        cpu,
                        kernel,
                        grant_rx,
                        yield_tx: yield_tx.clone(),
                        budget_end: Ns::ZERO,
                        over_budget: false,
                        compute_chunk: chunk,
                        page,
                        fastpath,
                        tlb: [None; crate::ctx::TLB_ENTRIES],
                        tlb_next: 0,
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        // Gate: wait for the first grant before running.
                        ctx.rendezvous();
                        (body)(&mut ctx);
                    }));
                    match result {
                        Ok(()) => {
                            let _ = yield_tx.send((tid, YieldReason::Done));
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<StopToken>().is_some() {
                                // Engine-initiated stop: exit quietly.
                            } else {
                                let msg = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| s.to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "<non-string panic>".to_string());
                                let _ = yield_tx.send((tid, YieldReason::Panicked(msg)));
                            }
                        }
                    }
                })
                .expect("spawning simulated thread");
            self.threads.push(ThreadSlot {
                grant_tx,
                handle: Some(handle),
                done: false,
                home_cpu: cpu.index(),
            });
            self.alive += 1;
        }
    }

    /// Sequential processor assignment for new threads (the paper's
    /// affinity scheduler assigns "sequentially by processor number"),
    /// skipping processors stopped by hard failures.
    fn assign_cpu(&mut self) -> CpuId {
        let dead = self.kernel.lock().dead_cpus.clone();
        for _ in 0..self.cpus.len() {
            let c = self.next_cpu % self.cpus.len();
            self.next_cpu += 1;
            if !dead[c] {
                return CpuId::from(c);
            }
        }
        panic!("no live processor left to assign threads to");
    }

    /// Adds a parked thread to the appropriate queue.
    fn enqueue(&mut self, tid: usize) {
        match self.scheduler {
            SchedulerKind::Affinity => {
                // The thread keeps the cpu it was assigned at creation.
                let cpu = self.threads[tid].home_cpu;
                self.cpus[cpu].runq.push_back(tid);
            }
            SchedulerKind::GlobalQueue => {
                self.global_q.push_back(tid);
            }
        }
    }

    /// Installs queued threads on idle processors (dead ones excluded —
    /// granting a stopped processor would stall virtual time forever).
    fn fill_cpus(&mut self) {
        let dead = self.kernel.lock().dead_cpus.clone();
        for (c, c_dead) in dead.iter().enumerate().take(self.cpus.len()) {
            if *c_dead || self.cpus[c].current.is_some() {
                continue;
            }
            let tid = match self.scheduler {
                SchedulerKind::Affinity => self.cpus[c].runq.pop_front(),
                SchedulerKind::GlobalQueue => self.global_q.pop_front(),
            };
            if let Some(tid) = tid {
                let now = self.clock_of(c);
                self.cpus[c].current = Some(tid);
                self.cpus[c].quantum_end = now + self.quantum;
            }
        }
    }

    /// The heart of the engine: repeatedly grant the lowest-clock
    /// processor's thread a budget and process its yield. Returns a
    /// panic message if a simulated thread panicked.
    fn schedule_loop(&mut self) -> Option<String> {
        while self.alive > 0 {
            self.fill_cpus();
            // Pick the runnable processor with the lowest clock.
            let mut best: Option<(Ns, usize)> = None;
            for c in 0..self.cpus.len() {
                if self.cpus[c].current.is_some() {
                    let t = self.clock_of(c);
                    if best.is_none_or(|(bt, bc)| (t, c) < (bt, bc)) {
                        best = Some((t, c));
                    }
                }
            }
            // Fire the periodic kernel daemon when virtual time crosses
            // its next deadline (measured on the minimum clock, so the
            // tick happens "before" any thread passes it).
            if let Some((t, _)) = best {
                // Scheduled hard failures fire on the same deterministic
                // trigger: when the minimum runnable clock crosses the
                // failure's virtual time, between grants. A CpuOffline
                // may drain the picked processor, so re-run selection.
                if self.pending_hard.first().is_some_and(|hf| t >= hf.vt()) {
                    while self.pending_hard.first().is_some_and(|hf| t >= hf.vt()) {
                        let hf = self.pending_hard.remove(0);
                        self.fire_hard_fault(hf);
                    }
                    continue;
                }
                if t >= self.next_daemon_tick {
                    let mut k = self.kernel.lock();
                    let Kernel { machine, pmap, .. } = &mut *k;
                    pmap.timer_tick(machine);
                    // Pressure scan rides the same tick: flush cold
                    // replicas on processors below their low watermark.
                    // Above the watermarks this reads one free count per
                    // cpu and does nothing.
                    if self.pressure_low > 0 {
                        pmap.pressure_tick(machine, self.pressure_low, self.pressure_high);
                    }
                    drop(k);
                    self.next_daemon_tick = Ns(t.0 + self.daemon_interval.0);
                }
                // A wedged application (spin-wait that can never be
                // released, runaway loop) advances virtual time forever;
                // the budget turns that into a truncated run the caller
                // can type as an error instead of a hang.
                if let Some(budget) = self.vt_budget {
                    if t > budget {
                        self.vt_exceeded = true;
                        return None;
                    }
                }
            }
            let Some((clock, cpu)) = best else {
                // Alive threads but nothing runnable: all must be parked
                // in queues, which fill_cpus would have installed.
                unreachable!("runnable threads exist but no processor has work");
            };
            // Budget: up to the next other processor's clock plus the
            // lookahead window, but never past the quantum.
            let others_min = (0..self.cpus.len())
                .filter(|&c| c != cpu && self.cpus[c].current.is_some())
                .map(|c| self.clock_of(c))
                .min();
            let mut budget_end = match others_min {
                Some(om) => Ns(om.0.saturating_add(self.lookahead.0))
                    .min(self.cpus[cpu].quantum_end),
                None => {
                    if self.has_waiters(cpu) {
                        self.cpus[cpu].quantum_end
                    } else {
                        Ns(u64::MAX)
                    }
                }
            };
            // Never grant past the virtual-time budget: a lone runaway
            // thread would otherwise receive an unbounded budget and
            // never yield back for the abort check above.
            if let Some(b) = self.vt_budget {
                budget_end = budget_end.min(Ns(b.0.saturating_add(1)));
            }
            let _ = clock;
            let tid = self.cpus[cpu].current.expect("picked a runnable cpu");
            self.threads[tid]
                .grant_tx
                .send(Grant::Run { cpu: CpuId::from(cpu), budget_end })
                .expect("granting a live thread");
            let (ytid, reason) = self.yield_rx.recv().expect("running thread vanished");
            debug_assert_eq!(ytid, tid, "only the granted thread can yield");
            match reason {
                YieldReason::Budget => {
                    let now = self.clock_of(cpu);
                    if now >= self.cpus[cpu].quantum_end && self.has_waiters(cpu) {
                        // Quantum expired with competition: rotate.
                        self.cpus[cpu].current = None;
                        self.enqueue(tid);
                    } else if now >= self.cpus[cpu].quantum_end {
                        // No competition: just extend the quantum.
                        self.cpus[cpu].quantum_end = now + self.quantum;
                    }
                }
                YieldReason::Done => {
                    self.cpus[cpu].current = None;
                    self.threads[tid].done = true;
                    self.alive -= 1;
                }
                YieldReason::Panicked(msg) => {
                    self.cpus[cpu].current = None;
                    self.threads[tid].done = true;
                    self.alive -= 1;
                    return Some(msg);
                }
            }
        }
        None
    }

    /// True if any other thread is waiting to run (on `cpu`'s queue or
    /// the global queue, by scheduler kind).
    fn has_waiters(&self, cpu: usize) -> bool {
        match self.scheduler {
            SchedulerKind::Affinity => !self.cpus[cpu].runq.is_empty(),
            SchedulerKind::GlobalQueue => !self.global_q.is_empty(),
        }
    }

    /// Stops any still-parked threads and joins everything.
    fn shutdown(&mut self) {
        for t in &self.threads {
            if !t.done {
                let _ = t.grant_tx.send(Grant::Stop);
            }
        }
        for t in &mut self.threads {
            if let Some(h) = t.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use numa_core::MoveLimitPolicy;

    fn sim(n_cpus: usize) -> Simulator {
        Simulator::new(SimConfig::small(n_cpus), Box::new(MoveLimitPolicy::default()))
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut s = sim(1);
        let a = s.alloc(256, Prot::READ_WRITE);
        s.spawn("writer", move |ctx| {
            for i in 0..10u32 {
                ctx.write_u32(a + (i as u64) * 4, i * i);
            }
        });
        let r = s.run();
        assert!(r.total_user() > Ns::ZERO);
        for i in 0..10u32 {
            assert_eq!(s.with_kernel(|k| k.peek_u32(a + (i as u64) * 4)), i * i);
        }
    }

    #[test]
    fn threads_interleave_in_virtual_time() {
        // Two threads on two cpus append their tid to a log guarded only
        // by virtual-time ordering (distinct slots). Both make the same
        // number of references, so their clocks stay within one op of
        // each other and neither can run far ahead.
        let mut s = sim(2);
        let a = s.alloc(4096, Prot::READ_WRITE);
        for t in 0..2u32 {
            let base = a + (t as u64) * 1024;
            s.spawn(format!("t{t}"), move |ctx| {
                for i in 0..50u32 {
                    ctx.write_u32(base + (i as u64) * 4, i + t * 1000);
                }
            });
        }
        let r = s.run();
        // Both cpus actually did work.
        assert!(r.cpu_times[0].user > Ns::ZERO);
        assert!(r.cpu_times[1].user > Ns::ZERO);
        assert_eq!(s.with_kernel(|k| k.peek_u32(a + 1024 + 4)), 1001);
    }

    #[test]
    fn deterministic_across_runs() {
        let total = |_: ()| {
            let mut s = sim(3);
            let a = s.alloc(8192, Prot::READ_WRITE);
            for t in 0..3u64 {
                s.spawn(format!("t{t}"), move |ctx| {
                    for i in 0..40u64 {
                        let slot = a + ((t * 40 + i) % 128) * 4;
                        let v = ctx.read_u32(slot);
                        ctx.write_u32(slot, v + 1);
                    }
                });
            }
            let r = s.run();
            (r.total_user(), r.total_system(), r.numa.requests, r.refs)
        };
        assert_eq!(total(()), total(()));
    }

    #[test]
    fn more_threads_than_cpus_time_slice() {
        let mut s = sim(1);
        let a = s.alloc(1024, Prot::READ_WRITE);
        for t in 0..3u32 {
            let slot = a + (t as u64) * 256;
            s.spawn(format!("t{t}"), move |ctx| {
                ctx.compute(Ns::from_ms(5));
                ctx.write_u32(slot, t + 1);
            });
        }
        let r = s.run();
        for t in 0..3u64 {
            assert_eq!(s.with_kernel(|k| k.peek_u32(a + t * 256)), t as u32 + 1);
        }
        // All on one cpu.
        assert!(r.cpu_times[0].user >= Ns::from_ms(15));
    }

    #[test]
    #[should_panic(expected = "simulated thread panicked")]
    fn app_panic_propagates() {
        let mut s = sim(2);
        s.spawn("bad", |_ctx| panic!("boom"));
        s.spawn("good", |ctx| ctx.compute(Ns::from_us(1)));
        let _ = s.run();
    }

    #[test]
    fn global_queue_scheduler_migrates_threads() {
        let mut cfg = SimConfig::small(2);
        cfg.scheduler = SchedulerKind::GlobalQueue;
        cfg.quantum = Ns::from_us(200);
        let mut s = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
        let a = s.alloc(4096, Prot::READ_WRITE);
        // Three compute-heavy threads on two cpus with a tiny quantum
        // must migrate; each records the set of cpus it ran on.
        use std::sync::{Arc as SArc, Mutex as SMutex};
        let seen = SArc::new(SMutex::new(vec![Vec::new(), Vec::new(), Vec::new()]));
        for t in 0..3usize {
            let seen = SArc::clone(&seen);
            let slot = a + (t as u64) * 1024;
            s.spawn(format!("t{t}"), move |ctx| {
                for i in 0..40u32 {
                    ctx.compute(Ns::from_us(100));
                    ctx.write_u32(slot, i);
                    seen.lock().unwrap()[t].push(ctx.cpu().index());
                }
            });
        }
        let _ = s.run();
        let seen = seen.lock().unwrap();
        let migrated = seen.iter().any(|v| {
            let mut s = v.clone();
            s.dedup();
            s.len() > 1
        });
        assert!(migrated, "expected at least one thread to change cpus: {seen:?}");
    }

    #[test]
    fn run_helpers_round_trip_values() {
        let mut s = sim(1);
        let a = s.alloc(4096, Prot::READ_WRITE);
        s.spawn("runner", move |ctx| {
            let vals: Vec<u32> = (0..256u32).map(|i| i * 3 + 1).collect();
            ctx.write_run(a, 4, &vals);
            assert_eq!(ctx.read_run(a, 4, 256), vals);
            // Strided f64 runs (one element per 16 bytes).
            let fv: Vec<f64> = (0..32).map(|i| i as f64 * 0.5 - 3.0).collect();
            ctx.write_run_f64(a + 2048, 16, &fv);
            assert_eq!(ctx.read_run_f64(a + 2048, 16, 32), fv);
            // Stride zero: repeated references to one address.
            assert_eq!(ctx.read_run(a, 0, 5), vec![vals[0]; 5]);
        });
        let r = s.run();
        assert!(r.total_user() > Ns::ZERO);
    }

    #[test]
    fn fast_and_slow_paths_measure_identically() {
        // Two threads doing batched runs over shared and private pages,
        // under tight budgets (small preset: zero lookahead), must
        // produce identical clocks and reference counters on both paths.
        let run = |fast: bool| {
            let cfg = SimConfig::small(2).fastpath(fast);
            let mut s = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
            let a = s.alloc(8192, Prot::READ_WRITE);
            for t in 0..2u64 {
                let base = a + t * 4096;
                s.spawn(format!("t{t}"), move |ctx| {
                    let vals: Vec<u32> = (0..512u32).map(|i| i ^ (t as u32)).collect();
                    ctx.write_run(base, 4, &vals);
                    for _ in 0..3 {
                        assert_eq!(ctx.read_run(base, 4, 512), vals);
                    }
                    // A shared word both threads re-read.
                    let _ = ctx.read_run(a, 0, 16);
                });
            }
            let r = s.run();
            (r.cpu_times.clone(), r.refs, r.numa.requests, r.bus)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn vt_budget_turns_runaway_threads_into_typed_errors() {
        // A thread that computes forever can never finish; without the
        // budget this would schedule endlessly. With it, run_one returns
        // a typed error naming the budget instead of hanging.
        let cfg = SimConfig::small(1).vt_budget(Some(Ns::from_ms(2)));
        let res = run_one(cfg, Box::new(MoveLimitPolicy::default()), |sim| {
            sim.spawn("spinner", |ctx| loop {
                ctx.compute(Ns::from_us(50));
            });
            sim.run();
            Ok(())
        });
        let err = res.expect_err("runaway thread must exceed the budget");
        assert!(err.contains("virtual-time budget"), "got: {err}");
    }

    #[test]
    fn vt_budget_does_not_disturb_completing_runs() {
        let run = |budget: Option<Ns>| {
            let cfg = SimConfig::small(2).vt_budget(budget);
            let mut s = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
            let a = s.alloc(4096, Prot::READ_WRITE);
            for t in 0..2u64 {
                let base = a + t * 2048;
                s.spawn(format!("t{t}"), move |ctx| {
                    for i in 0..64u64 {
                        ctx.write_u32(base + i * 4, i as u32);
                    }
                });
            }
            let r = s.run();
            assert!(!s.vt_exceeded());
            (r.cpu_times, r.refs, r.numa)
        };
        assert_eq!(run(None), run(Some(Ns::from_ms(500))));
    }

    #[test]
    fn pressure_daemon_is_invisible_with_ample_frames() {
        let run = |low: usize, high: usize| {
            let mut cfg = SimConfig::small(2);
            cfg.pressure_low = low;
            cfg.pressure_high = high;
            let mut s = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
            let a = s.alloc(8192, Prot::READ_WRITE);
            for t in 0..2u64 {
                let base = a + t * 4096;
                s.spawn(format!("t{t}"), move |ctx| {
                    for i in 0..256u64 {
                        ctx.write_u32(base + i * 16, (i + t) as u32);
                    }
                    ctx.compute(Ns::from_ms(3)); // cross a daemon tick
                });
            }
            let r = s.run();
            (r.cpu_times, r.refs, r.numa, r.bus)
        };
        let with_daemon = run(2, 4);
        let without_daemon = run(0, 0);
        assert_eq!(with_daemon.2.pressure_ticks, 0, "no pressure on a roomy machine");
        assert_eq!(with_daemon, without_daemon, "daemon must be free when idle");
    }

    /// A schedule with one `NodeOffline` against a machine where two
    /// threads share pages across the dead node's boundary.
    fn chaos_sim(hard: Vec<ace_machine::HardFault>) -> Simulator {
        use ace_machine::FaultConfig;
        let cfg = SimConfig::small(3)
            .faults(FaultConfig { hard_faults: hard, ..FaultConfig::default() });
        Simulator::new(cfg, Box::new(MoveLimitPolicy::default()))
    }

    fn chaos_workload(s: &mut Simulator) -> VAddr {
        let a = s.alloc(8192, Prot::READ_WRITE);
        for t in 0..3u64 {
            let base = a + t * 2048;
            s.spawn(format!("t{t}"), move |ctx| {
                for i in 0..64u64 {
                    ctx.write_u32(base + i * 4, (t * 1000 + i) as u32);
                    // Everybody also re-reads a shared word so replicas
                    // exist on the node that will die.
                    let _ = ctx.read_u32(a);
                    ctx.compute(Ns::from_us(40));
                }
            });
        }
        a
    }

    #[test]
    fn node_offline_mid_run_completes_with_typed_degradation() {
        let mut s = chaos_sim(vec![ace_machine::HardFault::NodeOffline {
            node: ace_machine::NodeId(1),
            vt: Ns::from_us(800),
        }]);
        let a = chaos_workload(&mut s);
        let r = s.run();
        assert_eq!(r.numa.nodes_offlined, 1);
        assert!(
            r.numa.pages_rehomed + r.numa.pages_lost > 0,
            "the dead node held replicas that must be recovered"
        );
        assert!(r.numa.hard_failure_actions() > 0);
        // Survivors' private pages are intact; the directory is legal.
        for t in [0u64, 2] {
            assert_eq!(
                s.with_kernel(|k| k.peek_u32(a + t * 2048 + 63 * 4)),
                (t * 1000 + 63) as u32
            );
        }
        s.with_kernel(|k| k.check_consistency()).expect("directory legal after recovery");
    }

    #[test]
    fn cpu_offline_drains_threads_to_survivors() {
        let mut s = chaos_sim(vec![ace_machine::HardFault::CpuOffline {
            cpu: CpuId(2),
            vt: Ns::from_us(500),
        }]);
        let a = chaos_workload(&mut s);
        let r = s.run();
        assert_eq!(r.numa.threads_drained, 1, "t2 was running on the dead cpu");
        // The drained thread still finished its writes on a survivor.
        assert_eq!(s.with_kernel(|k| k.peek_u32(a + 2 * 2048 + 63 * 4)), 2063);
        assert!(r.cpu_times[2].user < r.cpu_times[0].user);
        s.with_kernel(|k| k.check_consistency()).expect("directory legal after drain");
    }

    #[test]
    fn hard_failure_recovery_is_deterministic() {
        let run = |_: ()| {
            let mut s = chaos_sim(vec![
                ace_machine::HardFault::NodeOffline { node: ace_machine::NodeId(1), vt: Ns::from_us(600) },
                ace_machine::HardFault::CpuOffline { cpu: CpuId(2), vt: Ns::from_us(900) },
            ]);
            chaos_workload(&mut s);
            let r = s.run();
            (r.cpu_times.clone(), r.refs, r.numa, r.bus)
        };
        assert_eq!(run(()), run(()));
    }

    #[test]
    fn dead_cpu_stays_dead_across_runs() {
        let mut s = chaos_sim(vec![ace_machine::HardFault::CpuOffline {
            cpu: CpuId(0),
            vt: Ns(0),
        }]);
        let a = s.alloc(256, Prot::READ_WRITE);
        s.spawn("one", move |ctx| ctx.write_u32(a, 1));
        let r1 = s.run();
        assert_eq!(r1.cpu_times[0].user, Ns::ZERO, "cpu 0 died before running");
        // A second run re-arms the schedule; the offline is idempotent
        // and new threads still avoid the dead processor.
        s.spawn("two", move |ctx| ctx.write_u32(a + 4, 2));
        let r2 = s.run();
        assert_eq!(r2.cpu_times[0].user, Ns::ZERO);
        assert_eq!(s.with_kernel(|k| k.peek_u32(a + 4)), 2);
    }

    #[test]
    fn empty_hard_schedule_is_byte_invisible() {
        let run = |hard: Vec<ace_machine::HardFault>| {
            let mut s = chaos_sim(hard);
            chaos_workload(&mut s);
            let r = s.run();
            (r.cpu_times.clone(), r.refs, r.numa, r.bus)
        };
        assert_eq!(run(Vec::new()), run(Vec::new()));
        assert_eq!(run(Vec::new()).2.hard_failure_actions(), 0);
    }

    #[test]
    fn run_twice_accumulates() {
        let mut s = sim(1);
        let a = s.alloc(64, Prot::READ_WRITE);
        s.spawn("one", move |ctx| ctx.write_u32(a, 1));
        let r1 = s.run();
        s.spawn("two", move |ctx| ctx.write_u32(a + 4, 2));
        let r2 = s.run();
        assert!(r2.total_user() > r1.total_user());
        assert_eq!(s.with_kernel(|k| k.peek_u32(a + 4)), 2);
    }
}
