//! Results of one simulation run.

use crate::kernel::RefCounters;
use ace_machine::{BusStats, CpuTime, FaultStats, Ns};
use numa_core::NumaStats;
use std::fmt;

/// Everything measured during one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Policy that was active.
    pub policy: &'static str,
    /// Per-processor user/system times.
    pub cpu_times: Vec<CpuTime>,
    /// Application reference counts by distance.
    pub refs: RefCounters,
    /// NUMA layer statistics.
    pub numa: NumaStats,
    /// IPC bus traffic.
    pub bus: BusStats,
    /// Hardware faults injected by the machine's fault injector.
    pub faults: FaultStats,
}

impl RunReport {
    /// Total user time across all processors (the paper's T measure).
    pub fn total_user(&self) -> Ns {
        self.cpu_times.iter().map(|t| t.user).sum()
    }

    /// Total system time across all processors (Table 4's S measure).
    pub fn total_system(&self) -> Ns {
        self.cpu_times.iter().map(|t| t.system).sum()
    }

    /// Total user time in seconds.
    pub fn user_secs(&self) -> f64 {
        self.total_user().as_secs_f64()
    }

    /// Total system time in seconds.
    pub fn system_secs(&self) -> f64 {
        self.total_system().as_secs_f64()
    }

    /// Directly measured fraction of local references (the simulation's
    /// ground-truth counterpart of the paper's derived alpha).
    pub fn alpha_measured(&self) -> f64 {
        self.refs.alpha()
    }

    /// The longest per-processor total time — a proxy for elapsed
    /// (wall-clock) time of the run.
    pub fn makespan(&self) -> Ns {
        self.cpu_times.iter().map(|t| t.total()).max().unwrap_or(Ns::ZERO)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] user {:.4}s  system {:.4}s  alpha(meas) {:.3}",
            self.policy,
            self.user_secs(),
            self.system_secs(),
            self.alpha_measured()
        )?;
        writeln!(
            f,
            "  refs: {} local / {} global / {} remote",
            self.refs.local, self.refs.global, self.refs.remote
        )?;
        write!(
            f,
            "  numa: {} requests, {} replications, {} migrations, {} syncs, {} pins",
            self.numa.requests,
            self.numa.replications,
            self.numa.migrations,
            self.numa.syncs,
            self.numa.pins
        )?;
        // The recovery line only appears when something actually went
        // wrong: fault-free runs print exactly as before.
        if self.faults.any() || self.numa.recovery_actions() > 0 {
            write!(
                f,
                "\n  faults: {} bus timeouts / {} bad frames / {} corruptions; \
                 recovered with {} retries, {} quarantines, {} refetches, \
                 {} global fallbacks",
                self.faults.bus_timeouts,
                self.faults.bad_frames,
                self.faults.corruptions,
                self.numa.bus_retries,
                self.numa.frame_quarantines,
                self.numa.replica_refetches,
                self.numa.fault_global_fallbacks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_makespan() {
        let r = RunReport {
            policy: "test",
            cpu_times: vec![
                CpuTime { user: Ns(100), system: Ns(10) },
                CpuTime { user: Ns(50), system: Ns(70) },
            ],
            refs: RefCounters { local: 3, global: 1, remote: 0 },
            numa: NumaStats::default(),
            bus: BusStats::default(),
            faults: FaultStats::default(),
        };
        assert_eq!(r.total_user(), Ns(150));
        assert_eq!(r.total_system(), Ns(80));
        assert_eq!(r.makespan(), Ns(120));
        assert!((r.alpha_measured() - 0.75).abs() < 1e-12);
        let s = format!("{r}");
        assert!(s.contains("[test]"));
        assert!(!s.contains("faults:"), "fault-free reports omit the recovery line");
    }
}
