//! Results of one simulation run.

use crate::kernel::RefCounters;
use ace_machine::{BusStats, CpuTime, FaultStats, Ns};
use numa_core::NumaStats;
use numa_metrics::{Json, ServingReport};
use std::fmt;

/// Everything measured during one run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Policy that was active.
    pub policy: &'static str,
    /// Per-processor user/system times.
    pub cpu_times: Vec<CpuTime>,
    /// Application reference counts by distance.
    pub refs: RefCounters,
    /// NUMA layer statistics.
    pub numa: NumaStats,
    /// IPC bus traffic.
    pub bus: BusStats,
    /// Hardware faults injected by the machine's fault injector.
    pub faults: FaultStats,
    /// Request counts and tail latency, attached only by serving
    /// workloads ([`crate::Simulator::attach_serving`]). `None` — every
    /// batch workload — keeps the serialized report byte-identical to
    /// pre-serving reports.
    pub serving: Option<ServingReport>,
    /// Typed reason the workload could not finish verified after a hard
    /// component loss (data destroyed by a typed zero-fill, a wedged
    /// run cut by the virtual-time budget). `None` — every healthy run —
    /// keeps the serialized report byte-identical to pre-chaos reports.
    pub degraded: Option<String>,
}

impl RunReport {
    /// Total user time across all processors (the paper's T measure).
    pub fn total_user(&self) -> Ns {
        self.cpu_times.iter().map(|t| t.user).sum()
    }

    /// Total system time across all processors (Table 4's S measure).
    pub fn total_system(&self) -> Ns {
        self.cpu_times.iter().map(|t| t.system).sum()
    }

    /// Total user time in seconds.
    pub fn user_secs(&self) -> f64 {
        self.total_user().as_secs_f64()
    }

    /// Total system time in seconds.
    pub fn system_secs(&self) -> f64 {
        self.total_system().as_secs_f64()
    }

    /// Directly measured fraction of local references (the simulation's
    /// ground-truth counterpart of the paper's derived alpha).
    pub fn alpha_measured(&self) -> f64 {
        self.refs.alpha()
    }

    /// The longest per-processor total time — a proxy for elapsed
    /// (wall-clock) time of the run.
    pub fn makespan(&self) -> Ns {
        self.cpu_times.iter().map(|t| t.total()).max().unwrap_or(Ns::ZERO)
    }

    /// The full report as a machine-readable JSON value. Field order is
    /// fixed, so identical runs serialize to identical strings.
    pub fn to_json(&self) -> Json {
        let cpus: Vec<Json> = self
            .cpu_times
            .iter()
            .enumerate()
            .map(|(i, t)| {
                Json::obj()
                    .field("cpu", i)
                    .field("user_ns", t.user.0)
                    .field("system_ns", t.system.0)
            })
            .collect();
        let mut j = Json::obj()
            .field("policy", self.policy)
            .field("user_s", self.user_secs())
            .field("system_s", self.system_secs())
            .field("makespan_ns", self.makespan().0)
            .field("alpha_measured", self.alpha_measured())
            .field("cpu_times", Json::Arr(cpus))
            .field(
                "refs",
                Json::obj()
                    .field("local", self.refs.local)
                    .field("global", self.refs.global)
                    .field("remote", self.refs.remote),
            )
            .field("numa", {
                let mut numa = Json::obj()
                    .field("requests", self.numa.requests)
                    .field("read_requests", self.numa.read_requests)
                    .field("write_requests", self.numa.write_requests)
                    .field("replications", self.numa.replications)
                    .field("migrations", self.numa.migrations)
                    .field("syncs", self.numa.syncs)
                    .field("flushes", self.numa.flushes)
                    .field("shootdowns", self.numa.shootdowns)
                    .field("to_global", self.numa.to_global)
                    .field("to_remote", self.numa.to_remote)
                    .field("pins", self.numa.pins)
                    .field("zero_fill_local", self.numa.zero_fill_local)
                    .field("zero_fill_global", self.numa.zero_fill_global)
                    .field("local_pressure_fallbacks", self.numa.local_pressure_fallbacks)
                    .field("recovery_actions", self.numa.recovery_actions());
                // Pressure counters appear only when pressure actually
                // happened, so reports from runs with ample local frames
                // serialize byte-identically to pre-reclaim reports.
                if self.numa.reclaims > 0 {
                    numa = numa.field("reclaims", self.numa.reclaims);
                }
                if self.numa.degradations > 0 {
                    numa = numa.field("degradations", self.numa.degradations);
                }
                if self.numa.pressure_ticks > 0 {
                    numa = numa.field("pressure_ticks", self.numa.pressure_ticks);
                }
                // Flush-pin counters appear only when a flush-aware
                // policy actually pinned something; the paper's
                // move-limit policy never does, so every pre-existing
                // baseline keeps its exact bytes.
                if self.numa.flush_pins > 0 {
                    numa = numa
                        .field("flush_pins", self.numa.flush_pins)
                        .field("coherence_invalidations", self.numa.coherence_invalidations);
                }
                // Likewise the hierarchical counter: a flat machine can
                // never replicate from a sibling node, so flat reports
                // serialize byte-identically to pre-topology baselines.
                if self.numa.near_replications > 0 {
                    numa = numa.field("near_replications", self.numa.near_replications);
                }
                // Hard-failure counters follow the same discipline: a run
                // with no node or processor loss serializes byte-identically
                // to every pre-chaos baseline.
                if self.numa.hard_failure_actions() > 0 {
                    numa = numa
                        .field("nodes_offlined", self.numa.nodes_offlined)
                        .field("pages_rehomed", self.numa.pages_rehomed)
                        .field("pages_lost", self.numa.pages_lost)
                        .field("threads_drained", self.numa.threads_drained)
                        .field("dead_node_fallbacks", self.numa.dead_node_fallbacks);
                }
                numa
            })
            .field(
                "bus",
                Json::obj()
                    .field("global_word_transfers", self.bus.global_word_transfers)
                    .field("copy_word_transfers", self.bus.copy_word_transfers)
                    .field("remote_word_transfers", self.bus.remote_word_transfers)
                    .field("total_bytes", self.bus.total_bytes()),
            )
            .field(
                "faults",
                Json::obj()
                    .field("bus_timeouts", self.faults.bus_timeouts)
                    .field("bad_frames", self.faults.bad_frames)
                    .field("corruptions", self.faults.corruptions),
            );
        // The serving block appears only when a serving application
        // attached one, so batch reports keep their exact prior bytes.
        if let Some(s) = &self.serving {
            j = j.field("serving", s.to_json());
        }
        if let Some(d) = &self.degraded {
            j = j.field("degraded", d.as_str());
        }
        j
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] user {:.4}s  system {:.4}s  alpha(meas) {:.3}",
            self.policy,
            self.user_secs(),
            self.system_secs(),
            self.alpha_measured()
        )?;
        writeln!(
            f,
            "  refs: {} local / {} global / {} remote",
            self.refs.local, self.refs.global, self.refs.remote
        )?;
        write!(
            f,
            "  numa: {} requests, {} replications, {} migrations, {} syncs, {} pins",
            self.numa.requests,
            self.numa.replications,
            self.numa.migrations,
            self.numa.syncs,
            self.numa.pins
        )?;
        // The recovery line only appears when something actually went
        // wrong: fault-free runs print exactly as before.
        if self.faults.any() || self.numa.recovery_actions() > 0 {
            write!(
                f,
                "\n  faults: {} bus timeouts / {} bad frames / {} corruptions; \
                 recovered with {} retries, {} quarantines, {} refetches, \
                 {} global fallbacks",
                self.faults.bus_timeouts,
                self.faults.bad_frames,
                self.faults.corruptions,
                self.numa.bus_retries,
                self.numa.frame_quarantines,
                self.numa.replica_refetches,
                self.numa.fault_global_fallbacks
            )?;
        }
        // The flush-pin line only appears when a flush-aware policy
        // pinned something; move-limit runs print exactly as before.
        if self.numa.flush_pins > 0 {
            write!(
                f,
                "\n  flush-pins: {} pages pinned after {} coherence invalidations",
                self.numa.flush_pins, self.numa.coherence_invalidations
            )?;
        }
        // Likewise the pressure line: only under memory pressure.
        if self.numa.reclaims > 0 || self.numa.degradations > 0 {
            write!(
                f,
                "\n  pressure: {} reclaims, {} degradations, {} pressure ticks, \
                 peak {} local frames",
                self.numa.reclaims,
                self.numa.degradations,
                self.numa.pressure_ticks,
                self.numa.local_peak_frames
            )?;
        }
        // And the degraded line: only after a hard component loss.
        if self.numa.hard_failure_actions() > 0 {
            write!(
                f,
                "\n  degraded: {} nodes offlined, {} pages rehomed, {} pages lost, \
                 {} threads drained, {} dead-node fallbacks",
                self.numa.nodes_offlined,
                self.numa.pages_rehomed,
                self.numa.pages_lost,
                self.numa.threads_drained,
                self.numa.dead_node_fallbacks
            )?;
        }
        // And the serving line: only when a serving workload attached
        // its measurements.
        if let Some(s) = &self.serving {
            write!(
                f,
                "\n  serving: {} requests ({} gets / {} puts), \
                 p50 {} ns, p95 {} ns, p99 {} ns, p999 {} ns",
                s.requests,
                s.gets,
                s.puts,
                s.latency.p50(),
                s.latency.p95(),
                s.latency.p99(),
                s.latency.p999()
            )?;
            // The admission line only appears when an overload knob was
            // engaged; unprotected serving runs print exactly as before.
            if s.limited {
                write!(
                    f,
                    "\n  admission: {} admitted, shed {} queue-full / {} deadline / \
                     {} quota, goodput p99 {} ns",
                    s.admitted,
                    s.shed_queue_full,
                    s.shed_deadline,
                    s.shed_quota,
                    s.goodput.p99()
                )?;
            }
        }
        if let Some(d) = &self.degraded {
            write!(f, "\n  DEGRADED: {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_makespan() {
        let r = RunReport {
            policy: "test",
            cpu_times: vec![
                CpuTime { user: Ns(100), system: Ns(10) },
                CpuTime { user: Ns(50), system: Ns(70) },
            ],
            refs: RefCounters { local: 3, global: 1, remote: 0 },
            numa: NumaStats::default(),
            bus: BusStats::default(),
            faults: FaultStats::default(),
            serving: None,
            degraded: None,
        };
        assert_eq!(r.total_user(), Ns(150));
        assert_eq!(r.total_system(), Ns(80));
        assert_eq!(r.makespan(), Ns(120));
        assert!((r.alpha_measured() - 0.75).abs() < 1e-12);
        let s = format!("{r}");
        assert!(s.contains("[test]"));
        assert!(!s.contains("faults:"), "fault-free reports omit the recovery line");
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let r = RunReport {
            policy: "test",
            cpu_times: vec![CpuTime { user: Ns(100), system: Ns(10) }],
            refs: RefCounters { local: 3, global: 1, remote: 0 },
            numa: NumaStats::default(),
            bus: BusStats::default(),
            faults: FaultStats::default(),
            serving: None,
            degraded: None,
        };
        let a = r.to_json().to_string_flat();
        let b = r.to_json().to_string_flat();
        assert_eq!(a, b);
        numa_metrics::validate(&a).expect("report JSON must parse");
        assert!(a.starts_with("{\"policy\":\"test\","));
        assert!(a.contains("\"alpha_measured\":0.75"));
        assert!(a.contains("\"user_ns\":100"));
    }

    #[test]
    fn pressure_counters_appear_only_under_pressure() {
        let mut r = RunReport {
            policy: "test",
            cpu_times: vec![CpuTime { user: Ns(100), system: Ns(10) }],
            refs: RefCounters { local: 3, global: 1, remote: 0 },
            numa: NumaStats::default(),
            bus: BusStats::default(),
            faults: FaultStats::default(),
            serving: None,
            degraded: None,
        };
        let idle = r.to_json().to_string_flat();
        assert!(!idle.contains("reclaims"), "idle reports stay byte-identical");
        assert!(!idle.contains("pressure_ticks"));
        assert!(!format!("{r}").contains("pressure:"));
        r.numa.reclaims = 2;
        r.numa.degradations = 1;
        r.numa.pressure_ticks = 3;
        r.numa.local_peak_frames = 8;
        let busy = r.to_json().to_string_flat();
        assert!(busy.contains("\"reclaims\":2"));
        assert!(busy.contains("\"degradations\":1"));
        assert!(busy.contains("\"pressure_ticks\":3"));
        assert!(!busy.contains("local_peak_frames"), "peak is display-only");
        numa_metrics::validate(&busy).unwrap();
        let shown = format!("{r}");
        assert!(shown.contains("pressure: 2 reclaims, 1 degradations"));
    }

    #[test]
    fn flush_pin_counters_appear_only_when_a_flush_policy_pinned() {
        let mut r = RunReport {
            policy: "flush-limit",
            cpu_times: vec![CpuTime { user: Ns(100), system: Ns(10) }],
            refs: RefCounters { local: 3, global: 1, remote: 0 },
            numa: NumaStats::default(),
            bus: BusStats::default(),
            faults: FaultStats::default(),
            serving: None,
            degraded: None,
        };
        // Invalidations happen under every policy; without a flush pin
        // the report must keep its exact pre-flush-policy bytes.
        r.numa.coherence_invalidations = 40;
        let unpinned = r.to_json().to_string_flat();
        assert!(!unpinned.contains("flush_pins"), "pin-free reports stay byte-identical");
        assert!(!unpinned.contains("coherence_invalidations"));
        assert!(!format!("{r}").contains("flush-pins:"));
        r.numa.flush_pins = 3;
        let pinned = r.to_json().to_string_flat();
        assert!(pinned.contains("\"flush_pins\":3"));
        assert!(pinned.contains("\"coherence_invalidations\":40"));
        numa_metrics::validate(&pinned).unwrap();
        assert!(format!("{r}")
            .contains("flush-pins: 3 pages pinned after 40 coherence invalidations"));
    }

    #[test]
    fn admission_line_appears_only_when_limited() {
        let mut latency = numa_metrics::LatencyHistogram::new();
        latency.record(1_000);
        latency.record(900_000);
        let mut r = RunReport {
            policy: "test",
            cpu_times: vec![CpuTime { user: Ns(100), system: Ns(10) }],
            refs: RefCounters { local: 3, global: 1, remote: 0 },
            numa: NumaStats::default(),
            bus: BusStats::default(),
            faults: FaultStats::default(),
            serving: Some(ServingReport::unlimited(2, 1, 1, latency)),
            degraded: None,
        };
        let unlimited = r.to_json().to_string_flat();
        assert!(!unlimited.contains("admitted"), "unlimited serving stays byte-identical");
        assert!(!unlimited.contains("goodput"));
        assert!(!format!("{r}").contains("admission:"));
        {
            let s = r.serving.as_mut().expect("attached above");
            s.limited = true;
            s.admitted = 2;
            s.requests = 5;
            s.shed(numa_metrics::ShedReason::QueueFull, 1);
            s.shed(numa_metrics::ShedReason::DeadlineExpired, 2);
        }
        let limited = r.to_json().to_string_flat();
        assert!(limited.contains("\"admitted\":2"));
        assert!(limited.contains("\"shed_queue_full\":1"));
        assert!(limited.contains("\"goodput_buckets\":[["));
        numa_metrics::validate(&limited).unwrap();
        let shown = format!("{r}");
        assert!(shown
            .contains("admission: 2 admitted, shed 1 queue-full / 2 deadline / 0 quota"));
    }

    #[test]
    fn hard_failure_counters_appear_only_after_component_loss() {
        let mut r = RunReport {
            policy: "test",
            cpu_times: vec![CpuTime { user: Ns(100), system: Ns(10) }],
            refs: RefCounters { local: 3, global: 1, remote: 0 },
            numa: NumaStats::default(),
            bus: BusStats::default(),
            faults: FaultStats::default(),
            serving: None,
            degraded: None,
        };
        let healthy = r.to_json().to_string_flat();
        assert!(!healthy.contains("nodes_offlined"), "healthy reports stay byte-identical");
        assert!(!format!("{r}").contains("degraded:"));
        r.numa.nodes_offlined = 1;
        r.numa.pages_rehomed = 4;
        r.numa.pages_lost = 2;
        r.numa.threads_drained = 3;
        r.numa.dead_node_fallbacks = 5;
        let degraded = r.to_json().to_string_flat();
        assert!(degraded.contains("\"nodes_offlined\":1"));
        assert!(degraded.contains("\"pages_rehomed\":4"));
        assert!(degraded.contains("\"pages_lost\":2"));
        assert!(degraded.contains("\"threads_drained\":3"));
        assert!(degraded.contains("\"dead_node_fallbacks\":5"));
        numa_metrics::validate(&degraded).unwrap();
        let shown = format!("{r}");
        assert!(shown.contains(
            "degraded: 1 nodes offlined, 4 pages rehomed, 2 pages lost, \
             3 threads drained, 5 dead-node fallbacks"
        ));
    }
}
