//! Coverage of the thread-context operation surface and engine knobs.

use ace_machine::{Ns, Prot};
use ace_sim::{SimConfig, Simulator};
use numa_core::MoveLimitPolicy;

fn sim(n: usize) -> Simulator {
    Simulator::new(SimConfig::small(n), Box::new(MoveLimitPolicy::default()))
}

#[test]
fn byte_and_word_ops_roundtrip() {
    let mut s = sim(1);
    let a = s.alloc(1024, Prot::READ_WRITE);
    s.spawn("ops", move |ctx| {
        ctx.write_u8(a, 0xAB);
        ctx.write_u8(a + 1, 0x01);
        assert_eq!(ctx.read_u8(a), 0xAB);
        ctx.write_i32(a + 4, -12345);
        assert_eq!(ctx.read_i32(a + 4), -12345);
        ctx.write_f64(a + 8, -0.5);
        assert_eq!(ctx.read_f64(a + 8), -0.5);
        // Byte writes and word reads see the same memory.
        assert_eq!(ctx.read_u32(a) & 0xFFFF, 0x01AB);
    });
    s.run();
}

#[test]
fn tid_cpu_and_ncpus_are_visible() {
    let mut s = sim(3);
    for t in 0..3 {
        s.spawn(format!("t{t}"), move |ctx| {
            assert_eq!(ctx.tid(), t);
            assert_eq!(ctx.n_cpus(), 3);
            // Affinity: sequential assignment.
            assert_eq!(ctx.cpu().index(), t);
        });
    }
    s.run();
}

#[test]
fn yield_now_is_harmless() {
    let mut s = sim(2);
    let a = s.alloc(64, Prot::READ_WRITE);
    for t in 0..2u64 {
        s.spawn(format!("t{t}"), move |ctx| {
            for i in 0..10u32 {
                ctx.yield_now();
                if t == 0 {
                    ctx.write_u32(a, i);
                } else {
                    let _ = ctx.read_u32(a);
                }
            }
        });
    }
    s.run();
    assert_eq!(s.with_kernel(|k| k.peek_u32(a)), 9);
}

#[test]
fn compute_is_chunked_but_exact() {
    let mut s = sim(1);
    s.spawn("compute", |ctx| {
        ctx.compute(Ns::from_ms(3));
        ctx.compute(Ns(1)); // Sub-chunk remainder.
    });
    let r = s.run();
    assert_eq!(r.total_user(), Ns(3_000_001));
}

#[test]
fn lookahead_zero_and_nonzero_agree_on_results() {
    // Timing may differ across lookahead settings (bounded reorder), but
    // data results and conservation properties must not.
    let run = |lookahead: Ns| {
        let mut cfg = SimConfig::small(3);
        cfg.lookahead = lookahead;
        let mut s = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
        let a = s.alloc(4096, Prot::READ_WRITE);
        for t in 0..3u64 {
            s.spawn(format!("t{t}"), move |ctx| {
                for i in 0..60u64 {
                    let slot = a + ((t * 64 + i % 64) % 256) * 4;
                    let v = ctx.read_u32(slot);
                    ctx.write_u32(slot, v + 1);
                }
            });
        }
        s.run();
        // Sum of all increments is conserved regardless of interleaving.
        let mut sum = 0u64;
        for w in 0..256u64 {
            sum += s.with_kernel(|k| k.peek_u32(a + w * 4)) as u64;
        }
        sum
    };
    // Slots are per-thread-disjoint (t*64 block), so the count is exact.
    assert_eq!(run(Ns::ZERO), 180);
    assert_eq!(run(Ns::from_us(100)), 180);
}

#[test]
fn unix_syscall_charges_master_system_time() {
    let mut s = sim(2);
    let a = s.alloc(64, Prot::READ_WRITE);
    s.spawn("caller", move |ctx| {
        ctx.write_u32(a, 3);
        ctx.unix_syscall(Ns::from_us(50), &[a]);
        // The syscall's read-modify-write preserved the value.
        assert_eq!(ctx.read_u32(a), 3);
    });
    // Two threads so the caller is not on cpu0... tid 0 -> cpu0; spawn a
    // second thread first to shift assignment.
    let r = s.run();
    assert!(r.cpu_times[0].system >= Ns::from_us(50));
}

#[test]
fn reports_accumulate_refs_by_distance() {
    let mut s = sim(2);
    let a = s.alloc(64, Prot::READ_WRITE);
    // Ping-pong writes to force global pinning under a zero threshold.
    let mut cfg = SimConfig::small(2);
    cfg.machine.global_frames = 64;
    let mut s2 = Simulator::new(cfg, Box::new(MoveLimitPolicy::new(0)));
    let b = s2.alloc(64, Prot::READ_WRITE);
    for t in 0..2u64 {
        s2.spawn(format!("t{t}"), move |ctx| {
            for _ in 0..20 {
                ctx.write_u32(b, t as u32);
            }
        });
    }
    let r2 = s2.run();
    assert!(r2.refs.global > 0, "pinned page must serve global refs");
    // And the plain single-writer case is all local.
    s.spawn("solo", move |ctx| {
        for i in 0..20 {
            ctx.write_u32(a, i);
        }
    });
    let r = s.run();
    assert_eq!(r.refs.global, 0);
    assert_eq!(r.refs.local, 20);
}
