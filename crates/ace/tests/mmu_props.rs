//! Property tests for the Rosetta-like MMU: the forward map and the
//! inverted (one-virtual-address-per-frame) map must stay consistent
//! under arbitrary operation sequences.

use ace_machine::mmu::{Asid, Mmu, Vpn};
use ace_machine::{Access, Frame, Prot};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Enter { asid: Asid, vpn: Vpn, frame: u32, writable: bool },
    Remove { asid: Asid, vpn: Vpn },
    RemoveFrame { frame: u32 },
    Protect { asid: Asid, vpn: Vpn, writable: bool },
    Translate { asid: Asid, vpn: Vpn, store: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let asid = 1u32..3;
    let vpn = 0u64..8;
    let frame = 0u32..6;
    prop_oneof![
        (asid.clone(), vpn.clone(), frame.clone(), any::<bool>())
            .prop_map(|(asid, vpn, frame, writable)| Op::Enter { asid, vpn, frame, writable }),
        (asid.clone(), vpn.clone()).prop_map(|(asid, vpn)| Op::Remove { asid, vpn }),
        frame.prop_map(|frame| Op::RemoveFrame { frame }),
        (asid.clone(), vpn.clone(), any::<bool>())
            .prop_map(|(asid, vpn, writable)| Op::Protect { asid, vpn, writable }),
        (asid, vpn, any::<bool>())
            .prop_map(|(asid, vpn, store)| Op::Translate { asid, vpn, store }),
    ]
}

/// A naive shadow of the MMU semantics: at most one (asid, vpn) per
/// frame, newest enter wins.
#[derive(Default)]
struct Shadow {
    map: HashMap<(Asid, Vpn), (u32, bool)>,
}

impl Shadow {
    fn enter(&mut self, asid: Asid, vpn: Vpn, frame: u32, writable: bool) {
        // Displace any other vpn currently holding this frame.
        self.map.retain(|&k, &mut (f, _)| f != frame || k == (asid, vpn));
        self.map.insert((asid, vpn), (frame, writable));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mmu_matches_shadow(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut mmu = Mmu::new();
        let mut shadow = Shadow::default();
        for op in ops {
            match op {
                Op::Enter { asid, vpn, frame, writable } => {
                    let prot = if writable { Prot::READ_WRITE } else { Prot::READ };
                    mmu.enter(asid, vpn, Frame::global(frame), prot);
                    shadow.enter(asid, vpn, frame, writable);
                }
                Op::Remove { asid, vpn } => {
                    mmu.remove(asid, vpn);
                    shadow.map.remove(&(asid, vpn));
                }
                Op::RemoveFrame { frame } => {
                    mmu.remove_frame(Frame::global(frame));
                    shadow.map.retain(|_, &mut (f, _)| f != frame);
                }
                Op::Protect { asid, vpn, writable } => {
                    let prot = if writable { Prot::READ_WRITE } else { Prot::READ };
                    let had = mmu.protect(asid, vpn, prot);
                    prop_assert_eq!(had, shadow.map.contains_key(&(asid, vpn)));
                    if let Some(e) = shadow.map.get_mut(&(asid, vpn)) {
                        e.1 = writable;
                    }
                }
                Op::Translate { asid, vpn, store } => {
                    let kind = if store { Access::Store } else { Access::Fetch };
                    let got = mmu.translate(asid, vpn, kind);
                    match shadow.map.get(&(asid, vpn)) {
                        None => prop_assert!(got.is_err()),
                        Some(&(frame, writable)) => {
                            if store && !writable {
                                prop_assert!(got.is_err());
                            } else {
                                prop_assert_eq!(got, Ok(Frame::global(frame)));
                            }
                        }
                    }
                }
            }
            // Global invariants after every op.
            prop_assert_eq!(mmu.len(), shadow.map.len());
            // Each frame mapped at most once: probe every shadow entry.
            for (&(asid, vpn), &(frame, writable)) in &shadow.map {
                let m = mmu.probe(asid, vpn).expect("shadow entry must exist");
                prop_assert_eq!(m.frame, Frame::global(frame));
                prop_assert_eq!(m.prot.allows_write(), writable);
            }
        }
    }
}
