//! Deterministic fault injection for the simulated memory hierarchy.
//!
//! Real NUMA machines fail in ways the happy path never exercises: bus
//! transactions time out under contention, local-memory frames develop
//! uncorrectable ECC errors, and DMA engines occasionally deliver a page
//! with flipped bits. The [`FaultInjector`] models all three so the NUMA
//! layer's recovery paths can be driven — and tested — reproducibly:
//!
//! * **Transient bus timeouts** abort a page copy that crosses the IPC
//!   bus before any data moves; the caller is expected to retry.
//! * **Bad frames** are local-memory frames whose first allocation fails
//!   an ECC scrub; once declared bad a frame stays bad forever, and the
//!   memory allocator quarantines it (see [`PhysMem::quarantine`]).
//! * **Silent corruption** lets a bus-crossing page copy complete but
//!   flips one byte of the destination; only an end-to-end checksum
//!   catches it.
//!
//! Everything is driven by one seeded [SplitMix64] stream plus optional
//! *scripted* faults (exact sequences queued by tests), so a given seed
//! produces the same fault schedule on every run. With all rates at zero
//! and nothing scripted the injector is inert: no random numbers are
//! drawn and no behaviour changes anywhere in the machine.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [`PhysMem::quarantine`]: crate::mem::PhysMem::quarantine

use crate::mem::{Frame, MemRegion};
use crate::time::Ns;
use crate::types::CpuId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A scheduled **hard failure**: a whole component dies at a fixed
/// virtual time. Unlike the stochastic channels above, hard failures
/// are not drawn from the random stream — they are an explicit,
/// deterministic schedule, so a run with a node loss at t=5 ms replays
/// identically under any host parallelism.
///
/// The machine itself only records the schedule; the execution engine
/// watches virtual time and fires each failure exactly once, and the
/// NUMA layer runs the online recovery protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HardFault {
    /// `node`'s entire local memory module goes offline at `vt`: every
    /// frame in it is permanently lost. The node's processors keep
    /// executing, served by global and remote memory.
    NodeOffline {
        /// Node whose local memory dies.
        node: crate::types::NodeId,
        /// Virtual time of the failure.
        vt: Ns,
    },
    /// `cpu` stops executing at `vt`; its runnable threads must drain
    /// to the surviving processors. Its local memory stays reachable
    /// over the bus.
    CpuOffline {
        /// Processor that dies.
        cpu: CpuId,
        /// Virtual time of the failure.
        vt: Ns,
    },
}

impl HardFault {
    /// The virtual time the failure fires at.
    pub fn vt(self) -> Ns {
        match self {
            HardFault::NodeOffline { vt, .. } | HardFault::CpuOffline { vt, .. } => vt,
        }
    }

    /// The component index the failure strikes — the node index for a
    /// node death, the processor index for a processor death.
    pub fn target_index(self) -> u16 {
        match self {
            HardFault::NodeOffline { node, .. } => node.0,
            HardFault::CpuOffline { cpu, .. } => cpu.0,
        }
    }
}

/// Knobs controlling fault injection. All rates are probabilities in
/// `[0, 1]` evaluated independently per opportunity; the default
/// configuration injects nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault stream. Two machines configured
    /// with the same seed and rates see the same fault schedule.
    pub seed: u64,
    /// Probability that a bus-crossing page copy times out.
    pub bus_timeout_rate: f64,
    /// Probability that a never-before-allocated local frame fails its
    /// ECC scrub and must be quarantined.
    pub bad_frame_rate: f64,
    /// Probability that a bus-crossing page copy completes but silently
    /// corrupts one byte of the destination.
    pub corruption_rate: f64,
    /// Consecutive bad frames tolerated in one local placement attempt
    /// before the manager gives up on that local memory and degrades the
    /// page to a global placement.
    pub quarantine_threshold: u32,
    /// Copy attempts (initial try plus retries) before a transfer is
    /// declared unrecoverable.
    pub max_copy_retries: u32,
    /// System time charged per retry, multiplied by the attempt number
    /// (linear backoff).
    pub retry_backoff: Ns,
    /// Scheduled hard failures (node and processor deaths), fired by
    /// the execution engine when virtual time reaches each entry's
    /// `vt`. Empty — the default — leaves every code path byte-
    /// identical to a machine that has no hard-failure support at all.
    pub hard_faults: Vec<HardFault>,
}

impl FaultConfig {
    /// Fault injection fully disabled: zero rates, recovery knobs at
    /// their defaults.
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            seed: 0,
            bus_timeout_rate: 0.0,
            bad_frame_rate: 0.0,
            corruption_rate: 0.0,
            quarantine_threshold: 2,
            max_copy_retries: 4,
            retry_backoff: Ns(10_000),
            hard_faults: Vec::new(),
        }
    }

    /// True if any stochastic fault can fire.
    pub fn any_rate(&self) -> bool {
        self.bus_timeout_rate > 0.0 || self.bad_frame_rate > 0.0 || self.corruption_rate > 0.0
    }

    /// Checks rates are valid probabilities and thresholds are sane.
    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("bus_timeout_rate", self.bus_timeout_rate),
            ("bad_frame_rate", self.bad_frame_rate),
            ("corruption_rate", self.corruption_rate),
        ] {
            if !(0.0..=1.0).contains(&r) || r.is_nan() {
                return Err(format!("{name} {r} is not a probability"));
            }
        }
        if self.max_copy_retries == 0 {
            return Err("max_copy_retries must be at least 1".to_string());
        }
        if self.quarantine_threshold == 0 {
            return Err("quarantine_threshold must be at least 1".to_string());
        }
        // A component can die only once; a second schedule entry for
        // the same (kind, index) is a script bug, not a fault model.
        let mut seen = HashSet::new();
        for hf in &self.hard_faults {
            let key = match hf {
                HardFault::NodeOffline { node, .. } => ("node", node.0),
                HardFault::CpuOffline { cpu, .. } => ("cpu", cpu.0),
            };
            if !seen.insert(key) {
                return Err(format!("duplicate hard fault scheduled: {hf:?}"));
            }
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// What went wrong with one page-copy attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyFault {
    /// The bus transaction timed out before any data moved.
    BusTimeout,
    /// The copy completed but one byte of the destination was flipped.
    Corruption,
}

/// Error returned by [`Machine::try_kernel_copy_page`] when the bus
/// transaction timed out: the destination page is unchanged and the
/// caller should retry (with backoff) or give up.
///
/// [`Machine::try_kernel_copy_page`]: crate::machine::Machine::try_kernel_copy_page
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusTimeout;

impl fmt::Display for BusTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus transaction timed out")
    }
}

impl std::error::Error for BusTimeout {}

/// Counts of faults *injected* (as opposed to recovered from — recovery
/// counters live in the NUMA layer's stats).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct FaultStats {
    /// Bus-crossing page copies aborted by a timeout.
    pub bus_timeouts: u64,
    /// Local frames that failed their ECC scrub.
    pub bad_frames: u64,
    /// Page copies silently corrupted.
    pub corruptions: u64,
}

impl FaultStats {
    /// True if any fault was injected.
    pub fn any(&self) -> bool {
        self.bus_timeouts > 0 || self.bad_frames > 0 || self.corruptions > 0
    }
}

/// The deterministic fault source, owned by the [`Machine`].
///
/// [`Machine`]: crate::machine::Machine
pub struct FaultInjector {
    cfg: FaultConfig,
    /// SplitMix64 state.
    rng: u64,
    /// Faults queued by tests, consumed before the stochastic stream on
    /// each bus-crossing copy.
    scripted_copy: VecDeque<CopyFault>,
    /// Frames explicitly declared bad by tests.
    scripted_bad: HashSet<Frame>,
    /// Memoized scrub verdicts: a frame once scrubbed keeps its verdict,
    /// so re-allocating a good frame never turns it bad mid-run.
    verdicts: HashMap<Frame, bool>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for `cfg`.
    pub fn new(cfg: FaultConfig) -> FaultInjector {
        FaultInjector {
            rng: cfg.seed,
            cfg,
            scripted_copy: VecDeque::new(),
            scripted_bad: HashSet::new(),
            verdicts: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// True if this injector can still do anything: a stochastic rate is
    /// nonzero or a scripted fault is pending. When false, the machine
    /// and manager take exactly the fault-free code paths.
    pub fn active(&self) -> bool {
        self.cfg.any_rate() || !self.scripted_copy.is_empty() || !self.scripted_bad.is_empty()
    }

    /// Queues an exact fault for the next bus-crossing page copy
    /// (consumed in FIFO order, ahead of the stochastic stream).
    pub fn script_copy_fault(&mut self, fault: CopyFault) {
        self.scripted_copy.push_back(fault);
    }

    /// Declares `frame` bad: its next ECC scrub fails. Only local frames
    /// participate in the bad-frame model.
    pub fn script_bad_frame(&mut self, frame: Frame) {
        debug_assert!(
            matches!(frame.region, MemRegion::Local(_)),
            "only local frames can be scripted bad"
        );
        self.scripted_bad.insert(frame);
    }

    /// One SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of one page copy. `crosses_bus` is true when the
    /// source and destination live in different memory modules; copies
    /// within one module never see bus faults.
    pub fn copy_fault(&mut self, crosses_bus: bool) -> Option<CopyFault> {
        if !crosses_bus {
            return None;
        }
        let fault = if let Some(f) = self.scripted_copy.pop_front() {
            Some(f)
        } else if self.cfg.bus_timeout_rate > 0.0 && self.next_f64() < self.cfg.bus_timeout_rate {
            Some(CopyFault::BusTimeout)
        } else if self.cfg.corruption_rate > 0.0 && self.next_f64() < self.cfg.corruption_rate {
            Some(CopyFault::Corruption)
        } else {
            None
        };
        match fault {
            Some(CopyFault::BusTimeout) => self.stats.bus_timeouts += 1,
            Some(CopyFault::Corruption) => self.stats.corruptions += 1,
            None => {}
        }
        fault
    }

    /// ECC-scrubs `frame` at allocation time; true means the frame is
    /// bad and must be quarantined. Verdicts are memoized so a frame's
    /// health never changes after its first scrub. Global memory is
    /// modeled as ECC-protected and always scrubs clean (the logical
    /// page pool identifies global frame *i* with logical page *i*, so a
    /// dead global frame would be a dead logical page).
    pub fn scrub_frame(&mut self, frame: Frame) -> bool {
        if frame.region == MemRegion::Global {
            return false;
        }
        if let Some(&bad) = self.verdicts.get(&frame) {
            return bad;
        }
        let bad = if self.scripted_bad.remove(&frame) {
            true
        } else {
            self.cfg.bad_frame_rate > 0.0 && self.next_f64() < self.cfg.bad_frame_rate
        };
        self.verdicts.insert(frame, bad);
        if bad {
            self.stats.bad_frames += 1;
        }
        bad
    }

    /// Picks the byte to flip for a corrupted copy: a deterministic
    /// offset within the page and a nonzero XOR mask.
    pub fn corruption_site(&mut self, page_bytes: usize) -> (usize, u8) {
        let r = self.next_u64();
        let offset = (r as usize) % page_bytes;
        let mask = ((r >> 32) as u8) | 1;
        (offset, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CpuId;

    #[test]
    fn disabled_injector_is_inert() {
        let mut inj = FaultInjector::new(FaultConfig::disabled());
        assert!(!inj.active());
        for _ in 0..100 {
            assert_eq!(inj.copy_fault(true), None);
            assert!(!inj.scrub_frame(Frame::local(crate::types::NodeId(0), 3)));
        }
        assert!(!inj.stats().any());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            seed: 42,
            bus_timeout_rate: 0.3,
            bad_frame_rate: 0.2,
            corruption_rate: 0.1,
            ..FaultConfig::disabled()
        };
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        for i in 0..200 {
            assert_eq!(a.copy_fault(true), b.copy_fault(true));
            let f = Frame::local(crate::types::NodeId(0), i);
            assert_eq!(a.scrub_frame(f), b.scrub_frame(f));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().any());
    }

    #[test]
    fn scripted_faults_come_first_and_in_order() {
        let mut inj = FaultInjector::new(FaultConfig::disabled());
        inj.script_copy_fault(CopyFault::BusTimeout);
        inj.script_copy_fault(CopyFault::Corruption);
        assert!(inj.active());
        // Non-crossing copies do not consume scripted faults.
        assert_eq!(inj.copy_fault(false), None);
        assert_eq!(inj.copy_fault(true), Some(CopyFault::BusTimeout));
        assert_eq!(inj.copy_fault(true), Some(CopyFault::Corruption));
        assert_eq!(inj.copy_fault(true), None);
        assert!(!inj.active());
        assert_eq!(inj.stats().bus_timeouts, 1);
        assert_eq!(inj.stats().corruptions, 1);
    }

    #[test]
    fn scrub_verdicts_are_memoized() {
        let cfg = FaultConfig { seed: 7, bad_frame_rate: 0.5, ..FaultConfig::disabled() };
        let mut inj = FaultInjector::new(cfg);
        let frames: Vec<Frame> = (0..50).map(|i| Frame::local(crate::types::NodeId(1), i)).collect();
        let first: Vec<bool> = frames.iter().map(|&f| inj.scrub_frame(f)).collect();
        let second: Vec<bool> = frames.iter().map(|&f| inj.scrub_frame(f)).collect();
        assert_eq!(first, second);
        let bad_count = inj.stats().bad_frames;
        assert!(bad_count > 0 && (bad_count as usize) < frames.len());
    }

    #[test]
    fn scripted_bad_frame_fails_scrub_once_declared() {
        let mut inj = FaultInjector::new(FaultConfig::disabled());
        let f = Frame::local(crate::types::NodeId(0), 9);
        inj.script_bad_frame(f);
        assert!(inj.scrub_frame(f));
        // Memoized: stays bad.
        assert!(inj.scrub_frame(f));
        assert_eq!(inj.stats().bad_frames, 1);
    }

    #[test]
    fn global_frames_always_scrub_clean() {
        let cfg = FaultConfig { seed: 3, bad_frame_rate: 1.0, ..FaultConfig::disabled() };
        let mut inj = FaultInjector::new(cfg);
        assert!(!inj.scrub_frame(Frame::global(0)));
        assert!(inj.scrub_frame(Frame::local(crate::types::NodeId(0), 0)));
    }

    #[test]
    fn corruption_site_mask_is_nonzero() {
        let cfg = FaultConfig { seed: 11, ..FaultConfig::disabled() };
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..100 {
            let (off, mask) = inj.corruption_site(256);
            assert!(off < 256);
            assert_ne!(mask, 0);
        }
    }

    #[test]
    fn hard_fault_schedule_validates_and_stays_off_the_copy_path() {
        let mut c = FaultConfig::disabled();
        c.hard_faults = vec![
            HardFault::NodeOffline { node: crate::types::NodeId(1), vt: Ns(500) },
            HardFault::CpuOffline { cpu: CpuId(1), vt: Ns(900) },
        ];
        assert!(c.validate().is_ok(), "node and cpu death of one processor may coexist");
        assert_eq!(c.hard_faults[0].target_index(), 1);
        assert_eq!(c.hard_faults[0].vt(), Ns(500));
        // Hard failures are an engine-fired schedule, not a stochastic
        // channel: the injector's copy path must stay inert.
        let mut inj = FaultInjector::new(c.clone());
        assert!(!inj.active(), "a pure hard-fault schedule must not perturb copies");
        assert_eq!(inj.copy_fault(true), None);

        c.hard_faults.push(HardFault::NodeOffline { node: crate::types::NodeId(1), vt: Ns(700) });
        assert!(c.validate().is_err(), "a node can only die once");
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut c = FaultConfig::disabled();
        c.bus_timeout_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = FaultConfig::disabled();
        c.max_copy_retries = 0;
        assert!(c.validate().is_err());
        assert!(FaultConfig::disabled().validate().is_ok());
    }
}
