//! Virtual time and the memory access cost model.
//!
//! The simulator measures everything in integer nanoseconds of *virtual*
//! time. The default constants are the paper's measured 32-bit access
//! times on the ACE prototype (section 2.2): local fetch 0.65 us, local
//! store 0.84 us, global fetch 1.5 us, global store 1.4 us, so that global
//! memory is about 2.3x slower on fetches, 1.7x slower on stores, and
//! about 2x slower for a mix that is 45% stores.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A span (or instant) of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// Zero time.
    pub const ZERO: Ns = Ns(0);

    /// Constructs from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Constructs from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// The value in (fractional) seconds, for reporting.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Ns {
    type Output = Ns;
    #[inline]
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    #[inline]
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    #[inline]
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    #[inline]
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        Ns(iter.map(|n| n.0).sum())
    }
}

impl fmt::Debug for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Memory and kernel operation costs.
///
/// All per-reference costs are for a 32-bit access; wider accesses are
/// charged as multiple 32-bit references, as on the real 32-bit IPC bus.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// 32-bit fetch from the referencing processor's local memory.
    pub local_fetch: Ns,
    /// 32-bit store to the referencing processor's local memory.
    pub local_store: Ns,
    /// 32-bit fetch from global memory over the IPC bus.
    pub global_fetch: Ns,
    /// 32-bit store to global memory over the IPC bus.
    pub global_store: Ns,
    /// 32-bit fetch from *another* processor's local memory (the remote
    /// reference facility of section 4.4, unused by the default protocol
    /// but modelled for the remote-reference extension). Remote references
    /// cross the bus twice and are slower than global memory.
    pub remote_fetch: Ns,
    /// 32-bit store to another processor's local memory.
    pub remote_store: Ns,
    /// Fixed kernel overhead charged (as system time) for taking a page
    /// fault: trap entry, fault resolution bookkeeping, and return.
    pub fault_overhead: Ns,
    /// Cost per 32-bit word of copying a page between memories (sync,
    /// replicate, migrate). A kernel copy loop issues one fetch and one
    /// store per word; the default charges exactly that for a
    /// local-to-global or global-to-local pair.
    pub copy_word: Ns,
    /// Fixed per-page overhead of a page copy (loop setup, directory
    /// update).
    pub copy_setup: Ns,
    /// Cost of removing one mapping from a remote MMU (the paper's
    /// "flush"/"unmap" actions require interrupting the other processor).
    pub shootdown: Ns,
}

impl CostModel {
    /// The paper's measured ACE constants.
    pub fn ace() -> CostModel {
        CostModel {
            local_fetch: Ns(650),
            local_store: Ns(840),
            global_fetch: Ns(1_500),
            global_store: Ns(1_400),
            remote_fetch: Ns(2_200),
            remote_store: Ns(2_100),
            fault_overhead: Ns::from_us(35),
            // One global fetch plus one local store per word, the cheaper
            // direction of a kernel copy loop between global and local.
            copy_word: Ns(1_500 + 840),
            copy_setup: Ns::from_us(20),
            shootdown: Ns::from_us(25),
        }
    }

    /// Cost of a single 32-bit access of `kind` to memory at `dist`.
    #[inline]
    pub fn access(&self, kind: Access, dist: Distance) -> Ns {
        match (kind, dist) {
            (Access::Fetch, Distance::Local) => self.local_fetch,
            (Access::Store, Distance::Local) => self.local_store,
            (Access::Fetch, Distance::Global) => self.global_fetch,
            (Access::Store, Distance::Global) => self.global_store,
            (Access::Fetch, Distance::Remote) => self.remote_fetch,
            (Access::Store, Distance::Remote) => self.remote_store,
        }
    }

    /// Cost of copying one whole page of `page_bytes` bytes.
    #[inline]
    pub fn page_copy(&self, page_bytes: usize) -> Ns {
        self.copy_setup + self.copy_word * (page_bytes as u64 / 4)
    }

    /// The paper's G/L ratio for a pure-fetch reference mix.
    pub fn g_over_l_fetch(&self) -> f64 {
        self.global_fetch.0 as f64 / self.local_fetch.0 as f64
    }

    /// The paper's G/L ratio for a mix with the given store fraction.
    pub fn g_over_l_mix(&self, store_frac: f64) -> f64 {
        let g = self.global_fetch.0 as f64 * (1.0 - store_frac)
            + self.global_store.0 as f64 * store_frac;
        let l = self.local_fetch.0 as f64 * (1.0 - store_frac)
            + self.local_store.0 as f64 * store_frac;
        g / l
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ace()
    }
}

/// Direction of a memory reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Access {
    /// A load.
    Fetch,
    /// A store.
    Store,
}

/// How far the referenced physical memory is from the referencing
/// processor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Distance {
    /// The processor's own local memory.
    Local,
    /// Global memory, over the IPC bus.
    Global,
    /// Another processor's local memory (remote reference, section 4.4).
    Remote,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_arithmetic_and_display() {
        let a = Ns::from_us(2) + Ns(500);
        assert_eq!(a, Ns(2_500));
        assert_eq!((a * 4).0, 10_000);
        assert_eq!(Ns(100).saturating_sub(Ns(200)), Ns::ZERO);
        assert_eq!(format!("{}", Ns::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", Ns(42)), "42ns");
    }

    #[test]
    fn ace_ratios_match_paper() {
        let c = CostModel::ace();
        // "2.3 times slower than local on fetches, 1.7 times slower on
        // stores, and about 2 times slower for reference mixes that are
        // 45% stores."
        assert!((c.g_over_l_fetch() - 2.3).abs() < 0.02);
        let store_ratio = c.global_store.0 as f64 / c.local_store.0 as f64;
        assert!((store_ratio - 1.67).abs() < 0.02);
        let mixed = c.g_over_l_mix(0.45);
        assert!((mixed - 2.0).abs() < 0.05, "mixed G/L = {mixed}");
    }

    #[test]
    fn page_copy_scales_with_size() {
        let c = CostModel::ace();
        let small = c.page_copy(2048);
        let big = c.page_copy(4096);
        assert!(big > small);
        assert_eq!(big - c.copy_setup, (small - c.copy_setup) * 2);
    }

    #[test]
    fn access_cost_lookup() {
        let c = CostModel::ace();
        assert_eq!(c.access(Access::Fetch, Distance::Local), Ns(650));
        assert_eq!(c.access(Access::Store, Distance::Global), Ns(1_400));
        assert!(c.access(Access::Fetch, Distance::Remote) > c.global_fetch);
    }
}
