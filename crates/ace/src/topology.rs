//! Machine topology as data.
//!
//! The paper's ACE is one bus, one global memory, and one local memory
//! per processor — a shape the original `MachineConfig` hard-coded in
//! two scalar fields (`n_cpus`, `local_frames`) and a three-valued
//! [`Distance`] enum. A [`Topology`] generalizes that: processors are
//! grouped into memory *nodes*, nodes carry their own frame pools, and a
//! distance matrix of bus *hops* selects a per-hop cost row instead of
//! the single local/global/remote split. The flat paper machine is the
//! degenerate value (one node per processor, every off-diagonal hop 1,
//! the hop-1 row equal to the remote-reference constants), so a flat
//! topology reproduces the paper grid byte for byte while two-socket and
//! mesh machines are just different values of the same type.
//!
//! [`Distance`]: crate::time::Distance

use crate::config::{MachineConfig, PageSize};
use crate::fault::FaultConfig;
use crate::time::{Access, CostModel, Ns};
use crate::types::{CpuId, NodeId};

/// Per-hop access and copy costs: one row of the topology's cost table.
///
/// Row 0 is the processor's own node; row *h* is a reference crossing
/// `h` bus hops to another node's memory. Global memory keeps its own
/// costs in [`CostModel`] — it hangs off the bus itself and has no hop
/// count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HopCost {
    /// 32-bit fetch from memory this many hops away.
    pub fetch: Ns,
    /// 32-bit store to memory this many hops away.
    pub store: Ns,
    /// Cost per 32-bit word of a kernel page copy between two local
    /// memories this many hops apart. The flat preset pins every row to
    /// [`CostModel::copy_word`], reproducing the paper's uniform copy
    /// charge; hierarchical presets make near copies cheaper.
    pub copy_word: Ns,
}

/// The machine's memory topology: processors grouped into nodes, a hop
/// matrix between nodes, per-node frame pools, and per-hop cost rows.
///
/// Built with [`TopologyBuilder`]; validated by [`Topology::validate`]
/// (invoked from [`MachineConfig::validate`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Preset label, carried for reports ("flat", "two-socket", ...).
    kind: &'static str,
    /// Home node of each processor, indexed by cpu.
    cpu_home: Vec<NodeId>,
    /// Local page frames per node, indexed by node.
    node_frames: Vec<usize>,
    /// Row-major `n_nodes x n_nodes` hop matrix (diagonal zero).
    hops: Vec<u8>,
    /// Cost rows indexed by hop count; row 0 is the own-node row.
    hop_rows: Vec<HopCost>,
}

impl Topology {
    /// Preset label ("flat", "two-socket", "mesh", or "custom").
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Number of processors.
    #[inline]
    pub fn n_cpus(&self) -> usize {
        self.cpu_home.len()
    }

    /// Number of memory nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.node_frames.len()
    }

    /// True if this is the degenerate paper machine: one node per
    /// processor and a single off-diagonal hop.
    pub fn is_flat(&self) -> bool {
        self.n_nodes() == self.n_cpus() && self.max_hops() <= 1
    }

    /// The node whose local memory serves `cpu`.
    #[inline]
    pub fn home_of(&self, cpu: CpuId) -> NodeId {
        self.cpu_home[cpu.index()]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes()).map(NodeId::from)
    }

    /// The processors homed on `node`, in increasing id order.
    pub fn cpus_of(&self, node: NodeId) -> impl Iterator<Item = CpuId> + '_ {
        self.cpu_home
            .iter()
            .enumerate()
            .filter(move |(_, &h)| h == node)
            .map(|(i, _)| CpuId::from(i))
    }

    /// The lowest-numbered processor homed on `node` (every valid
    /// topology homes at least one processor per node).
    pub fn first_cpu(&self, node: NodeId) -> CpuId {
        self.cpus_of(node).next().expect("node with no processors")
    }

    /// Bus hops between two nodes (zero on the diagonal).
    #[inline]
    pub fn hops(&self, from: NodeId, to: NodeId) -> u8 {
        self.hops[from.index() * self.n_nodes() + to.index()]
    }

    /// The largest entry of the hop matrix.
    pub fn max_hops(&self) -> u8 {
        self.hops.iter().copied().max().unwrap_or(0)
    }

    /// The cost row for references crossing `hop` hops.
    #[inline]
    pub fn hop_cost(&self, hop: u8) -> HopCost {
        self.hop_rows[hop as usize]
    }

    /// Cost of one 32-bit access of `kind` to memory `hop` hops away.
    #[inline]
    pub fn access_cost(&self, kind: Access, hop: u8) -> Ns {
        let row = self.hop_rows[hop as usize];
        match kind {
            Access::Fetch => row.fetch,
            Access::Store => row.store,
        }
    }

    /// Local page frames on `node`.
    #[inline]
    pub fn local_frames(&self, node: NodeId) -> usize {
        self.node_frames[node.index()]
    }

    /// The per-node frame counts, indexed by node.
    pub fn node_frames(&self) -> &[usize] {
        &self.node_frames
    }

    /// Resizes every node's frame pool to `frames` (the sweep axis that
    /// used to poke `MachineConfig::local_frames`).
    pub fn set_uniform_local_frames(&mut self, frames: usize) {
        for f in &mut self.node_frames {
            *f = frames;
        }
    }

    /// Surviving nodes ordered by distance from `from` (then by id, for
    /// determinism), excluding `from` itself. `alive` filters out dead
    /// nodes; the recovery walk passes the directory's dead set.
    pub fn nodes_by_distance<'a>(
        &'a self,
        from: NodeId,
        mut alive: impl FnMut(NodeId) -> bool + 'a,
    ) -> impl Iterator<Item = NodeId> + 'a {
        let mut order: Vec<NodeId> =
            self.nodes().filter(|&n| n != from && alive(n)).collect();
        order.sort_by_key(|&n| (self.hops(from, n), n));
        order.into_iter()
    }

    /// Checks internal consistency: at least one cpu and node, every
    /// node populated and given frames, a square hop matrix with a zero
    /// diagonal, symmetric hops, and a cost row for every hop used.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_nodes();
        if self.n_cpus() == 0 || self.n_cpus() > CpuId::MAX_CPUS {
            return Err(format!("n_cpus {} out of range", self.n_cpus()));
        }
        if n == 0 || n > NodeId::MAX_NODES {
            return Err(format!("n_nodes {n} out of range"));
        }
        if self.hops.len() != n * n {
            return Err(format!("hop matrix is {} entries, want {}", self.hops.len(), n * n));
        }
        for &h in &self.cpu_home {
            if h.index() >= n {
                return Err(format!("cpu homed on nonexistent {h}"));
            }
        }
        for node in self.nodes() {
            if self.cpus_of(node).next().is_none() {
                return Err(format!("{node} has no processors"));
            }
            if self.local_frames(node) == 0 {
                return Err(format!("{node} has no local memory"));
            }
        }
        for i in 0..n {
            if self.hops[i * n + i] != 0 {
                return Err(format!("nonzero hop on the diagonal at node {i}"));
            }
            for j in 0..n {
                let (ij, ji) = (self.hops[i * n + j], self.hops[j * n + i]);
                if ij != ji {
                    return Err(format!("asymmetric hops between nodes {i} and {j}"));
                }
                if i != j && ij == 0 {
                    return Err(format!("distinct nodes {i} and {j} at hop 0"));
                }
            }
        }
        if self.hop_rows.len() <= self.max_hops() as usize {
            return Err(format!(
                "{} cost rows but hops go up to {}",
                self.hop_rows.len(),
                self.max_hops()
            ));
        }
        Ok(())
    }
}

/// Fluent builder for [`Topology`] and, via [`TopologyBuilder::config`],
/// for a whole [`MachineConfig`]. Presets replace the old
/// `MachineConfig::{ace,small}` constructors and the field-poking that
/// tests used to do on top of them.
///
/// # Examples
///
/// ```
/// use ace_machine::TopologyBuilder;
///
/// // The paper machine, 4 processors:
/// let cfg = TopologyBuilder::flat_ace(4).config();
/// assert_eq!(cfg.n_cpus(), 4);
/// assert!(cfg.topology.is_flat());
///
/// // A small test machine with one local frame per node:
/// let cfg = TopologyBuilder::small(2).local_frames(1).config();
/// assert_eq!(cfg.topology.local_frames(ace_machine::NodeId(0)), 1);
///
/// // A 2-socket machine: 2 nodes, 2 hops apart.
/// let t = TopologyBuilder::two_socket(8).build();
/// assert_eq!(t.n_nodes(), 2);
/// assert_eq!(t.max_hops(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    kind: &'static str,
    cpu_home: Vec<NodeId>,
    node_frames: Vec<usize>,
    hops: Vec<u8>,
    hop_rows: Vec<HopCost>,
    page_size: PageSize,
    global_frames: usize,
    costs: CostModel,
    bus_contention: bool,
    faults: FaultConfig,
}

impl TopologyBuilder {
    /// The degenerate paper machine: one node per processor, every
    /// off-diagonal entry one hop, the hop-1 row equal to the remote
    /// constants, 2 KB pages, 16 MB global and 8 MB local per node.
    pub fn flat_ace(n_cpus: usize) -> TopologyBuilder {
        let page_size = PageSize::default();
        Self::flat(
            "flat",
            n_cpus,
            8 * 1024 * 1024 / page_size.bytes(),
            page_size,
            16 * 1024 * 1024 / page_size.bytes(),
        )
    }

    /// The small flat test machine the unit suites use: 256-byte pages,
    /// 128 global frames, 64 local frames per node.
    pub fn small(n_cpus: usize) -> TopologyBuilder {
        Self::flat("flat", n_cpus, 64, PageSize::new(256), 128)
    }

    fn flat(
        kind: &'static str,
        n_cpus: usize,
        local_frames: usize,
        page_size: PageSize,
        global_frames: usize,
    ) -> TopologyBuilder {
        let costs = CostModel::ace();
        let n = n_cpus.max(1);
        let mut hops = vec![1u8; n * n];
        for i in 0..n {
            hops[i * n + i] = 0;
        }
        TopologyBuilder {
            kind,
            cpu_home: (0..n_cpus).map(NodeId::from).collect(),
            node_frames: vec![local_frames; n_cpus],
            hops,
            hop_rows: Self::default_rows(&costs, 1),
            page_size,
            global_frames,
            costs,
            bus_contention: false,
            faults: FaultConfig::disabled(),
        }
    }

    /// A two-socket machine: processors split evenly across two nodes
    /// (the first half on node 0), sockets two bus hops apart. Each
    /// node's pool holds 8 MB per processor it serves. The cross-socket
    /// row costs the flat remote constants, so the protocol sees the
    /// same latency cliff as the paper machine but with pooled frames.
    pub fn two_socket(n_cpus: usize) -> TopologyBuilder {
        let page_size = PageSize::default();
        let per_cpu = 8 * 1024 * 1024 / page_size.bytes();
        let split = n_cpus.div_ceil(2);
        let cpu_home: Vec<NodeId> =
            (0..n_cpus).map(|i| NodeId::from(usize::from(i >= split))).collect();
        let costs = CostModel::ace();
        let mut b = TopologyBuilder {
            kind: "two-socket",
            node_frames: vec![
                per_cpu * split.max(1),
                per_cpu * (n_cpus.saturating_sub(split)).max(1),
            ],
            cpu_home,
            hops: vec![0, 2, 2, 0],
            hop_rows: Self::default_rows(&costs, 2),
            page_size,
            global_frames: 16 * 1024 * 1024 / page_size.bytes(),
            costs,
            bus_contention: false,
            faults: FaultConfig::disabled(),
        };
        // Cross-socket (hop 2) costs exactly the flat remote constants.
        b.hop_rows[2] = HopCost {
            fetch: b.costs.remote_fetch,
            store: b.costs.remote_store,
            copy_word: b.costs.copy_word,
        };
        b
    }

    /// A grid of `n_nodes` nodes with `cpus_per_node` processors each,
    /// laid out on a near-square 2-D mesh with Manhattan-distance hops.
    /// Nearest neighbours (hop 1) are *cheaper* than global memory —
    /// the fast inter-node links that make replicate-from-nearest and
    /// re-home-to-nearest worthwhile — and each extra hop adds a fixed
    /// increment.
    pub fn mesh(n_nodes: usize, cpus_per_node: usize) -> TopologyBuilder {
        let page_size = PageSize::default();
        let per_cpu = 8 * 1024 * 1024 / page_size.bytes();
        let n = n_nodes.max(1);
        let side = (1..).find(|s| s * s >= n).unwrap_or(1);
        let mut hops = vec![0u8; n * n];
        for i in 0..n {
            for j in 0..n {
                let (xi, yi) = (i % side, i / side);
                let (xj, yj) = (j % side, j / side);
                hops[i * n + j] = (xi.abs_diff(xj) + yi.abs_diff(yj)) as u8;
            }
        }
        let costs = CostModel::ace();
        let max_hop = hops.iter().copied().max().unwrap_or(0);
        TopologyBuilder {
            kind: "mesh",
            cpu_home: (0..n * cpus_per_node.max(1)).map(|i| NodeId::from(i / cpus_per_node.max(1))).collect(),
            node_frames: vec![per_cpu * cpus_per_node.max(1); n],
            hops,
            hop_rows: Self::mesh_rows(&costs, max_hop),
            page_size,
            global_frames: 16 * 1024 * 1024 / page_size.bytes(),
            costs,
            bus_contention: false,
            faults: FaultConfig::disabled(),
        }
    }

    /// Default rows: row 0 is the local constants; rows 1.. are the flat
    /// remote constants (one bus crossing each way), with each hop past
    /// the first adding the same increment again. Copies charge the flat
    /// copy word everywhere, reproducing the paper's uniform copy cost.
    fn default_rows(costs: &CostModel, max_hop: u8) -> Vec<HopCost> {
        let mut rows = vec![HopCost {
            fetch: costs.local_fetch,
            store: costs.local_store,
            copy_word: costs.copy_word,
        }];
        let step_f = costs.remote_fetch.0.saturating_sub(costs.global_fetch.0);
        let step_s = costs.remote_store.0.saturating_sub(costs.global_store.0);
        for h in 1..=max_hop as u64 {
            rows.push(HopCost {
                fetch: Ns(costs.remote_fetch.0 + step_f * (h - 1)),
                store: Ns(costs.remote_store.0 + step_s * (h - 1)),
                copy_word: costs.copy_word,
            });
        }
        rows
    }

    /// Mesh rows: nearest neighbours beat global memory (fast point-to-
    /// point links), with a fixed increment per extra hop; copies over a
    /// fast link are cheaper than a bus copy in the same proportion.
    fn mesh_rows(costs: &CostModel, max_hop: u8) -> Vec<HopCost> {
        let mut rows = vec![HopCost {
            fetch: costs.local_fetch,
            store: costs.local_store,
            copy_word: costs.copy_word,
        }];
        for h in 1..=max_hop as u64 {
            let fetch = Ns(1_100 + 500 * (h - 1));
            let store = Ns(1_050 + 475 * (h - 1));
            rows.push(HopCost {
                fetch,
                store,
                // A kernel copy over the link: one far fetch plus one
                // local store per word, mirroring CostModel::copy_word.
                copy_word: fetch + costs.local_store,
            });
        }
        rows
    }

    /// Overrides the page size in bytes.
    pub fn page_bytes(mut self, bytes: usize) -> Self {
        self.page_size = PageSize::new(bytes);
        self
    }

    /// Overrides the number of global frames.
    pub fn global_frames(mut self, frames: usize) -> Self {
        self.global_frames = frames;
        self
    }

    /// Sets every node's local frame pool to `frames`.
    pub fn local_frames(mut self, frames: usize) -> Self {
        for f in &mut self.node_frames {
            *f = frames;
        }
        self
    }

    /// Sets one node's local frame pool.
    pub fn node_local_frames(mut self, node: NodeId, frames: usize) -> Self {
        self.node_frames[node.index()] = frames;
        self
    }

    /// Overrides one hop row's access costs (the copy word follows the
    /// fetch cost plus a local store, like the defaults).
    pub fn hop_cost(mut self, hop: u8, fetch: Ns, store: Ns) -> Self {
        let row = &mut self.hop_rows[hop as usize];
        row.fetch = fetch;
        row.store = store;
        if hop > 0 {
            row.copy_word = fetch + self.costs.local_store;
        }
        self
    }

    /// Replaces the cost model (global and kernel-operation costs; the
    /// hop rows are left as the preset built them).
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Enables or disables the FCFS bus-contention queue.
    pub fn bus_contention(mut self, on: bool) -> Self {
        self.bus_contention = on;
        self
    }

    /// Installs a fault-injection configuration.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Finishes the topology alone.
    pub fn build(self) -> Topology {
        Topology {
            kind: self.kind,
            cpu_home: self.cpu_home,
            node_frames: self.node_frames,
            hops: self.hops,
            hop_rows: self.hop_rows,
        }
    }

    /// Finishes a whole machine configuration.
    pub fn config(self) -> MachineConfig {
        MachineConfig {
            page_size: self.page_size,
            global_frames: self.global_frames,
            costs: self.costs.clone(),
            bus_contention: self.bus_contention,
            faults: self.faults.clone(),
            topology: Topology {
                kind: self.kind,
                cpu_home: self.cpu_home,
                node_frames: self.node_frames,
                hops: self.hops,
                hop_rows: self.hop_rows,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Distance;

    #[test]
    fn flat_preset_matches_the_paper_machine() {
        let cfg = TopologyBuilder::flat_ace(5).config();
        let t = &cfg.topology;
        assert_eq!(t.n_cpus(), 5);
        assert_eq!(t.n_nodes(), 5);
        assert!(t.is_flat());
        assert_eq!(t.max_hops(), 1);
        assert_eq!(cfg.global_bytes(), 16 * 1024 * 1024);
        assert_eq!(t.local_frames(NodeId(0)) * cfg.page_size.bytes(), 8 * 1024 * 1024);
        // Hop rows reproduce the three-valued cost model exactly.
        let c = &cfg.costs;
        assert_eq!(t.access_cost(Access::Fetch, 0), c.access(Access::Fetch, Distance::Local));
        assert_eq!(t.access_cost(Access::Store, 0), c.access(Access::Store, Distance::Local));
        assert_eq!(t.access_cost(Access::Fetch, 1), c.access(Access::Fetch, Distance::Remote));
        assert_eq!(t.access_cost(Access::Store, 1), c.access(Access::Store, Distance::Remote));
        assert_eq!(t.hop_cost(1).copy_word, c.copy_word);
        cfg.validate().unwrap();
    }

    #[test]
    fn small_preset_matches_old_small_machine() {
        let cfg = TopologyBuilder::small(2).config();
        assert_eq!(cfg.page_size.bytes(), 256);
        assert_eq!(cfg.global_frames, 128);
        assert_eq!(cfg.topology.local_frames(NodeId(1)), 64);
        assert!(cfg.topology.is_flat());
        cfg.validate().unwrap();
    }

    #[test]
    fn two_socket_splits_cpus_and_doubles_hops() {
        let t = TopologyBuilder::two_socket(6).build();
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.n_cpus(), 6);
        assert!(!t.is_flat());
        assert_eq!(t.home_of(CpuId(0)), NodeId(0));
        assert_eq!(t.home_of(CpuId(2)), NodeId(0));
        assert_eq!(t.home_of(CpuId(3)), NodeId(1));
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 2);
        assert_eq!(t.max_hops(), 2);
        assert_eq!(t.first_cpu(NodeId(1)), CpuId(3));
        assert_eq!(t.cpus_of(NodeId(0)).count(), 3);
        // The pooled node holds its processors' combined local memory.
        assert_eq!(t.local_frames(NodeId(0)), 3 * 8 * 1024 * 1024 / 2048);
        t.validate().unwrap();
    }

    #[test]
    fn mesh_uses_manhattan_hops_and_fast_near_links() {
        let t = TopologyBuilder::mesh(4, 2).build();
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.n_cpus(), 8);
        // 2x2 grid: diagonal corners are 2 hops apart.
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 2);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.max_hops(), 2);
        // Fast near link: hop 1 beats global memory.
        let c = CostModel::ace();
        assert!(t.access_cost(Access::Fetch, 1) < c.global_fetch);
        assert!(t.access_cost(Access::Fetch, 2) > t.access_cost(Access::Fetch, 1));
        assert!(t.hop_cost(1).copy_word < c.copy_word);
        t.validate().unwrap();
    }

    #[test]
    fn nodes_by_distance_orders_deterministically() {
        let t = TopologyBuilder::mesh(4, 1).build();
        let order: Vec<NodeId> = t.nodes_by_distance(NodeId(0), |_| true).collect();
        // From corner 0 of a 2x2 grid: neighbours 1 and 2 (1 hop, id
        // order), then diagonal 3 (2 hops).
        assert_eq!(order, vec![NodeId(1), NodeId(2), NodeId(3)]);
        // A dead neighbour is skipped.
        let order: Vec<NodeId> = t.nodes_by_distance(NodeId(0), |n| n != NodeId(1)).collect();
        assert_eq!(order, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn builder_overrides_apply() {
        let cfg = TopologyBuilder::small(2)
            .local_frames(3)
            .node_local_frames(NodeId(1), 7)
            .global_frames(9)
            .page_bytes(512)
            .hop_cost(1, Ns(900), Ns(880))
            .config();
        assert_eq!(cfg.topology.local_frames(NodeId(0)), 3);
        assert_eq!(cfg.topology.local_frames(NodeId(1)), 7);
        assert_eq!(cfg.global_frames, 9);
        assert_eq!(cfg.page_size.bytes(), 512);
        assert_eq!(cfg.topology.access_cost(Access::Fetch, 1), Ns(900));
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_malformed_topologies() {
        let mut t = TopologyBuilder::small(2).build();
        t.node_frames[0] = 0;
        assert!(t.validate().is_err(), "node without memory");

        let mut t = TopologyBuilder::small(2).build();
        t.hops[1] = 0;
        assert!(t.validate().is_err(), "distinct nodes at hop 0 / asymmetric");

        let mut t = TopologyBuilder::small(2).build();
        t.hops[1] = 9;
        assert!(t.validate().is_err(), "hop without a cost row");

        let mut t = TopologyBuilder::two_socket(4).build();
        t.cpu_home = vec![NodeId(0); 4];
        assert!(t.validate().is_err(), "node 1 left without processors");
    }

    #[test]
    fn set_uniform_local_frames_resizes_every_pool() {
        let mut t = TopologyBuilder::two_socket(4).build();
        t.set_uniform_local_frames(11);
        assert_eq!(t.node_frames(), &[11, 11]);
    }
}
