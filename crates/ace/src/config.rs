//! Machine configuration.

use crate::fault::FaultConfig;
use crate::time::CostModel;
use crate::topology::{Topology, TopologyBuilder};

/// Power-of-two page size, with helpers for address arithmetic.
///
/// The Rosetta MMU of the RT PC family used 2 KB pages; that is the
/// default. The false-sharing ablation varies this.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageSize {
    shift: u32,
}

impl PageSize {
    /// Creates a page size of `bytes`, which must be a power of two of at
    /// least 64 bytes.
    pub fn new(bytes: usize) -> PageSize {
        assert!(bytes.is_power_of_two() && bytes >= 64, "bad page size {bytes}");
        PageSize { shift: bytes.trailing_zeros() }
    }

    /// Page size in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        1usize << self.shift
    }

    /// log2 of the page size.
    #[inline]
    pub fn shift(self) -> u32 {
        self.shift
    }

    /// Virtual page number containing byte address `addr`.
    #[inline]
    pub fn page_of(self, addr: u64) -> u64 {
        addr >> self.shift
    }

    /// Byte offset of `addr` within its page.
    #[inline]
    pub fn offset_of(self, addr: u64) -> usize {
        (addr & ((1u64 << self.shift) - 1)) as usize
    }

    /// First byte address of page `page`.
    #[inline]
    pub fn base_of(self, page: u64) -> u64 {
        page << self.shift
    }

    /// Number of pages needed to hold `bytes` bytes.
    #[inline]
    pub fn pages_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(1u64 << self.shift)
    }

    /// Rounds `addr` up to the next page boundary.
    #[inline]
    pub fn round_up(self, addr: u64) -> u64 {
        let mask = (1u64 << self.shift) - 1;
        (addr + mask) & !mask
    }
}

impl Default for PageSize {
    fn default() -> Self {
        PageSize::new(2048)
    }
}

/// Static description of one simulated machine.
///
/// The machine's shape — processor count, memory nodes, per-node frame
/// pools, and the inter-node cost structure — lives in
/// [`Topology`]; this struct adds the machine-wide knobs (page size,
/// global memory, the kernel cost model, contention, faults). Build one
/// with [`TopologyBuilder::config`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Processor-and-node shape of the machine, with per-hop costs and
    /// per-node local frame pools.
    pub topology: Topology,
    /// Page size used by the MMUs and the memory pools.
    pub page_size: PageSize,
    /// Number of page frames of global memory (this also bounds the Mach
    /// logical page pool, which is the same size as global memory).
    pub global_frames: usize,
    /// Global-memory access and kernel-operation costs. Local-memory
    /// access costs come from the topology's hop rows.
    pub costs: CostModel,
    /// Model bus contention with an FCFS queue on top of the fixed
    /// access costs (off by default: the paper's methodology assumes
    /// contention-free runs and the Table 3 calibration relies on it).
    pub bus_contention: bool,
    /// Fault-injection knobs (all rates zero by default, which disables
    /// the fault layer entirely).
    pub faults: FaultConfig,
}

impl MachineConfig {
    /// Number of processor modules.
    #[inline]
    pub fn n_cpus(&self) -> usize {
        self.topology.n_cpus()
    }

    /// Total bytes of global memory.
    pub fn global_bytes(&self) -> usize {
        self.global_frames * self.page_size.bytes()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        if self.global_frames == 0 {
            return Err("no global memory".to_string());
        }
        self.faults.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        TopologyBuilder::flat_ace(8).config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_arithmetic() {
        let p = PageSize::new(2048);
        assert_eq!(p.bytes(), 2048);
        assert_eq!(p.page_of(4096), 2);
        assert_eq!(p.offset_of(4097), 1);
        assert_eq!(p.base_of(3), 6144);
        assert_eq!(p.pages_for(1), 1);
        assert_eq!(p.pages_for(2048), 1);
        assert_eq!(p.pages_for(2049), 2);
        assert_eq!(p.round_up(0), 0);
        assert_eq!(p.round_up(1), 2048);
        assert_eq!(p.round_up(2048), 2048);
    }

    #[test]
    #[should_panic(expected = "bad page size")]
    fn page_size_rejects_non_power_of_two() {
        let _ = PageSize::new(3000);
    }

    #[test]
    fn ace_config_sizes() {
        let c = TopologyBuilder::flat_ace(5).config();
        assert_eq!(c.n_cpus(), 5);
        assert_eq!(c.global_bytes(), 16 * 1024 * 1024);
        assert_eq!(
            c.topology.local_frames(crate::types::NodeId(0)) * c.page_size.bytes(),
            8 * 1024 * 1024
        );
        c.validate().unwrap();
    }

    #[test]
    fn builder_configs_are_plain_values() {
        // Two independently built descriptions of the same machine are
        // equal values — the description is data, with no hidden
        // constructor state to diverge on.
        let a = TopologyBuilder::flat_ace(3).config();
        let b = TopologyBuilder::flat_ace(3).config();
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.global_frames, b.global_frames);
        assert_eq!(TopologyBuilder::small(2).config().topology, TopologyBuilder::small(2).build());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = TopologyBuilder::small(2).config();
        c.global_frames = 0;
        assert!(c.validate().is_err());
        let c = TopologyBuilder::small(2).local_frames(0).config();
        assert!(c.validate().is_err());
    }
}
