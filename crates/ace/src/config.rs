//! Machine configuration.

use crate::fault::FaultConfig;
use crate::time::CostModel;

/// Power-of-two page size, with helpers for address arithmetic.
///
/// The Rosetta MMU of the RT PC family used 2 KB pages; that is the
/// default. The false-sharing ablation varies this.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageSize {
    shift: u32,
}

impl PageSize {
    /// Creates a page size of `bytes`, which must be a power of two of at
    /// least 64 bytes.
    pub fn new(bytes: usize) -> PageSize {
        assert!(bytes.is_power_of_two() && bytes >= 64, "bad page size {bytes}");
        PageSize { shift: bytes.trailing_zeros() }
    }

    /// Page size in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        1usize << self.shift
    }

    /// log2 of the page size.
    #[inline]
    pub fn shift(self) -> u32 {
        self.shift
    }

    /// Virtual page number containing byte address `addr`.
    #[inline]
    pub fn page_of(self, addr: u64) -> u64 {
        addr >> self.shift
    }

    /// Byte offset of `addr` within its page.
    #[inline]
    pub fn offset_of(self, addr: u64) -> usize {
        (addr & ((1u64 << self.shift) - 1)) as usize
    }

    /// First byte address of page `page`.
    #[inline]
    pub fn base_of(self, page: u64) -> u64 {
        page << self.shift
    }

    /// Number of pages needed to hold `bytes` bytes.
    #[inline]
    pub fn pages_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(1u64 << self.shift)
    }

    /// Rounds `addr` up to the next page boundary.
    #[inline]
    pub fn round_up(self, addr: u64) -> u64 {
        let mask = (1u64 << self.shift) - 1;
        (addr + mask) & !mask
    }
}

impl Default for PageSize {
    fn default() -> Self {
        PageSize::new(2048)
    }
}

/// Static description of one simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processor modules.
    pub n_cpus: usize,
    /// Page size used by the MMUs and the memory pools.
    pub page_size: PageSize,
    /// Number of page frames of global memory (this also bounds the Mach
    /// logical page pool, which is the same size as global memory).
    pub global_frames: usize,
    /// Number of page frames of local memory on each processor module.
    pub local_frames: usize,
    /// Access and kernel-operation costs.
    pub costs: CostModel,
    /// Model bus contention with an FCFS queue on top of the fixed
    /// access costs (off by default: the paper's methodology assumes
    /// contention-free runs and the Table 3 calibration relies on it).
    pub bus_contention: bool,
    /// Fault-injection knobs (all rates zero by default, which disables
    /// the fault layer entirely).
    pub faults: FaultConfig,
}

impl MachineConfig {
    /// The "typical" ACE of the paper: 8 processor slots with 2 KB pages,
    /// 16 MB of global memory and 8 MB of local memory per processor.
    pub fn ace(n_cpus: usize) -> MachineConfig {
        let page_size = PageSize::default();
        MachineConfig {
            n_cpus,
            page_size,
            global_frames: 16 * 1024 * 1024 / page_size.bytes(),
            local_frames: 8 * 1024 * 1024 / page_size.bytes(),
            costs: CostModel::ace(),
            bus_contention: false,
            faults: FaultConfig::disabled(),
        }
    }

    /// A small machine for unit tests: few frames so exhaustion paths are
    /// easy to exercise.
    pub fn small(n_cpus: usize) -> MachineConfig {
        MachineConfig {
            n_cpus,
            page_size: PageSize::new(256),
            global_frames: 128,
            local_frames: 64,
            costs: CostModel::ace(),
            bus_contention: false,
            faults: FaultConfig::disabled(),
        }
    }

    /// Total bytes of global memory.
    pub fn global_bytes(&self) -> usize {
        self.global_frames * self.page_size.bytes()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cpus == 0 || self.n_cpus > crate::types::CpuId::MAX_CPUS {
            return Err(format!("n_cpus {} out of range", self.n_cpus));
        }
        if self.global_frames == 0 {
            return Err("no global memory".to_string());
        }
        if self.local_frames == 0 {
            return Err("no local memory".to_string());
        }
        self.faults.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::ace(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_arithmetic() {
        let p = PageSize::new(2048);
        assert_eq!(p.bytes(), 2048);
        assert_eq!(p.page_of(4096), 2);
        assert_eq!(p.offset_of(4097), 1);
        assert_eq!(p.base_of(3), 6144);
        assert_eq!(p.pages_for(1), 1);
        assert_eq!(p.pages_for(2048), 1);
        assert_eq!(p.pages_for(2049), 2);
        assert_eq!(p.round_up(0), 0);
        assert_eq!(p.round_up(1), 2048);
        assert_eq!(p.round_up(2048), 2048);
    }

    #[test]
    #[should_panic(expected = "bad page size")]
    fn page_size_rejects_non_power_of_two() {
        let _ = PageSize::new(3000);
    }

    #[test]
    fn ace_config_sizes() {
        let c = MachineConfig::ace(5);
        assert_eq!(c.n_cpus, 5);
        assert_eq!(c.global_bytes(), 16 * 1024 * 1024);
        assert_eq!(c.local_frames * c.page_size.bytes(), 8 * 1024 * 1024);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = MachineConfig::small(2);
        c.n_cpus = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::small(2);
        c.global_frames = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::small(2);
        c.local_frames = 0;
        assert!(c.validate().is_err());
    }
}
