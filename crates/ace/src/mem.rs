//! Physical memory: global and per-processor local page frames.
//!
//! Frames hold real bytes, so that page replication, migration and
//! write-back in the NUMA layer are *observable*: a consistency bug makes
//! application programs compute wrong answers, which the application test
//! suites catch end to end.

use crate::config::MachineConfig;
use crate::time::Ns;
use crate::types::NodeId;
use std::collections::HashSet;
use std::fmt;

/// Which memory module a frame lives in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemRegion {
    /// The shared global memory cards on the IPC bus.
    Global,
    /// The local memory of one node. On the flat paper machine every
    /// processor module carries its own node, so node *i* is cpu *i*'s
    /// 8 MB local memory; hierarchical topologies pool several
    /// processors onto one node.
    Local(NodeId),
}

/// One physical page frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// The memory module holding the frame.
    pub region: MemRegion,
    /// Frame index within that module.
    pub index: u32,
}

impl Frame {
    /// Constructs a global frame.
    pub fn global(index: u32) -> Frame {
        Frame { region: MemRegion::Global, index }
    }

    /// Constructs a local frame on `node`.
    pub fn local(node: NodeId, index: u32) -> Frame {
        Frame { region: MemRegion::Local(node), index }
    }

    /// True if the frame is in global memory.
    pub fn is_global(self) -> bool {
        self.region == MemRegion::Global
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.region {
            MemRegion::Global => write!(f, "G#{}", self.index),
            MemRegion::Local(n) => write!(f, "L{}#{}", n.0, self.index),
        }
    }
}

/// Errors from frame allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The requested region has no free frames.
    OutOfFrames(MemRegion),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfFrames(r) => write!(f, "out of page frames in {r:?}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Storage and free-list for one memory module.
struct Module {
    /// Frame payloads; `None` until first touched, which keeps small
    /// simulations cheap even with realistically sized memories.
    frames: Vec<Option<Box<[u8]>>>,
    /// Indices of free frames, popped from the back.
    free: Vec<u32>,
    /// High-water mark of simultaneously allocated frames.
    peak_used: usize,
    /// Per-frame last-touch stamp in virtual time, kept by the machine's
    /// charge paths. Read by the reclaim layer to approximate LRU; never
    /// charges time itself.
    last_touch: Vec<Ns>,
}

impl Module {
    fn new(n_frames: usize) -> Module {
        Module {
            frames: (0..n_frames).map(|_| None).collect(),
            free: (0..n_frames as u32).rev().collect(),
            peak_used: 0,
            last_touch: vec![Ns::ZERO; n_frames],
        }
    }

    fn used(&self) -> usize {
        self.frames.len() - self.free.len()
    }
}

/// All physical memory of the machine.
pub struct PhysMem {
    page_bytes: usize,
    global: Module,
    locals: Vec<Module>,
    /// Frames retired after failing an ECC scrub. A quarantined frame is
    /// never returned to a free list, so it can never be re-allocated.
    quarantined: HashSet<Frame>,
    /// Per-node flag: true once the node's local memory has gone
    /// offline (a hard failure). A dead module allocates nothing and
    /// tolerates frees of its lost frames.
    offline: Vec<bool>,
}

impl PhysMem {
    /// Builds the memory described by `cfg`: one global module plus one
    /// local module per topology node, each sized by the node's pool.
    pub fn new(cfg: &MachineConfig) -> PhysMem {
        PhysMem {
            page_bytes: cfg.page_size.bytes(),
            global: Module::new(cfg.global_frames),
            locals: cfg.topology.node_frames().iter().map(|&n| Module::new(n)).collect(),
            quarantined: HashSet::new(),
            offline: vec![false; cfg.topology.n_nodes()],
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn module(&self, region: MemRegion) -> &Module {
        match region {
            MemRegion::Global => &self.global,
            MemRegion::Local(n) => &self.locals[n.index()],
        }
    }

    fn module_mut(&mut self, region: MemRegion) -> &mut Module {
        match region {
            MemRegion::Global => &mut self.global,
            MemRegion::Local(n) => &mut self.locals[n.index()],
        }
    }

    /// Allocates a frame in `region`. The frame's previous contents are
    /// undefined (a real kernel zeroes on demand; so does the pmap layer
    /// above).
    pub fn alloc(&mut self, region: MemRegion) -> Result<Frame, MemError> {
        let m = self.module_mut(region);
        let index = m.free.pop().ok_or(MemError::OutOfFrames(region))?;
        let used = m.used();
        if used > m.peak_used {
            m.peak_used = used;
        }
        m.last_touch[index as usize] = Ns::ZERO;
        Ok(Frame { region, index })
    }

    /// Allocates a *specific* global frame. The Mach logical page pool on
    /// the ACE corresponds one-to-one with global memory, so the pmap
    /// layer reserves global frame `i` for logical page `i`.
    pub fn alloc_global_at(&mut self, index: u32) -> Result<Frame, MemError> {
        let m = &mut self.global;
        match m.free.iter().rposition(|&f| f == index) {
            Some(pos) => {
                m.free.swap_remove(pos);
                let used = m.used();
                if used > m.peak_used {
                    m.peak_used = used;
                }
                m.last_touch[index as usize] = Ns::ZERO;
                Ok(Frame::global(index))
            }
            None => Err(MemError::OutOfFrames(MemRegion::Global)),
        }
    }

    /// Returns a frame to its module's free list. Freeing a frame of an
    /// offline module is a tolerated no-op: the frame is gone with its
    /// module, and recovery or late release paths may still hold
    /// references to it.
    pub fn free(&mut self, frame: Frame) {
        if self.is_offline_frame(frame) {
            return;
        }
        debug_assert!(
            !self.quarantined.contains(&frame),
            "freeing quarantined frame {frame:?}"
        );
        let m = self.module_mut(frame.region);
        debug_assert!(
            !m.free.contains(&frame.index),
            "double free of {frame:?}"
        );
        m.free.push(frame.index);
    }

    /// Takes `node`'s entire local memory offline — a hard component
    /// failure. The module's free list is emptied (nothing can ever be
    /// allocated there again), every payload is dropped (the bytes are
    /// permanently lost), and the frames that were allocated at the
    /// moment of death are returned in index order so the NUMA layer
    /// can walk its directory and recover each one. Quarantined frames
    /// were already retired and are not reported again. Idempotent:
    /// a second death of the same module reports nothing.
    pub fn offline_local(&mut self, node: NodeId) -> Vec<Frame> {
        if self.offline[node.index()] {
            return Vec::new();
        }
        self.offline[node.index()] = true;
        let m = &mut self.locals[node.index()];
        let free: HashSet<u32> = m.free.drain(..).collect();
        let mut lost = Vec::new();
        for (index, payload) in m.frames.iter_mut().enumerate() {
            *payload = None;
            let frame = Frame::local(node, index as u32);
            if !free.contains(&(index as u32)) && !self.quarantined.contains(&frame) {
                lost.push(frame);
            }
        }
        lost
    }

    /// True if `node`'s local memory module has gone offline.
    pub fn is_offline(&self, node: NodeId) -> bool {
        self.offline[node.index()]
    }

    /// True if `frame` belongs to an offline local module.
    pub fn is_offline_frame(&self, frame: Frame) -> bool {
        match frame.region {
            MemRegion::Global => false,
            MemRegion::Local(n) => self.offline[n.index()],
        }
    }

    /// Permanently retires an *allocated* frame (a failed ECC scrub).
    /// The frame is never returned to its free list, so it can never be
    /// handed out again; the module's capacity shrinks by one page.
    pub fn quarantine(&mut self, frame: Frame) {
        let m = self.module(frame.region);
        debug_assert!(
            !m.free.contains(&frame.index),
            "quarantining a free frame {frame:?}"
        );
        self.quarantined.insert(frame);
    }

    /// True if `frame` has been quarantined.
    pub fn is_quarantined(&self, frame: Frame) -> bool {
        self.quarantined.contains(&frame)
    }

    /// Number of quarantined frames in `region`.
    pub fn quarantined_frames(&self, region: MemRegion) -> usize {
        self.quarantined.iter().filter(|f| f.region == region).count()
    }

    /// Number of free frames in `region`.
    pub fn free_frames(&self, region: MemRegion) -> usize {
        self.module(region).free.len()
    }

    /// Number of allocated frames in `region`.
    pub fn used_frames(&self, region: MemRegion) -> usize {
        self.module(region).used()
    }

    /// High-water mark of allocated frames in `region`.
    pub fn peak_used_frames(&self, region: MemRegion) -> usize {
        self.module(region).peak_used
    }

    /// Records that `frame` was referenced at virtual time `t`. Called by
    /// the machine's charge paths; charges nothing itself.
    #[inline]
    pub fn touch(&mut self, frame: Frame, t: Ns) {
        self.module_mut(frame.region).last_touch[frame.index as usize] = t;
    }

    /// Virtual time of the last recorded reference to `frame`
    /// ([`Ns::ZERO`] if never touched since allocation).
    pub fn last_touch(&self, frame: Frame) -> Ns {
        self.module(frame.region).last_touch[frame.index as usize]
    }

    fn data(&mut self, frame: Frame) -> &mut [u8] {
        let page_bytes = self.page_bytes;
        let m = self.module_mut(frame.region);
        m.frames[frame.index as usize]
            .get_or_insert_with(|| vec![0u8; page_bytes].into_boxed_slice())
    }

    /// Reads a little-endian `u32` at byte `offset` within `frame`.
    ///
    /// The offset must leave room for four bytes within the page; an
    /// out-of-range offset is a caller bug (all callers derive offsets
    /// from page-masked virtual addresses) and panics via the slice
    /// bounds check rather than a decode `unwrap`.
    #[inline]
    pub fn read_u32(&mut self, frame: Frame, offset: usize) -> u32 {
        debug_assert!(offset + 4 <= self.page_bytes);
        let d = self.data(frame);
        let w = &d[offset..offset + 4];
        u32::from_le_bytes([w[0], w[1], w[2], w[3]])
    }

    /// Writes a little-endian `u32` at byte `offset` within `frame`.
    #[inline]
    pub fn write_u32(&mut self, frame: Frame, offset: usize, value: u32) {
        debug_assert!(offset + 4 <= self.page_bytes);
        let d = self.data(frame);
        d[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&mut self, frame: Frame, offset: usize) -> u8 {
        self.data(frame)[offset]
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, frame: Frame, offset: usize, value: u8) {
        self.data(frame)[offset] = value;
    }

    /// Copies a byte range into `out`.
    pub fn read_bytes(&mut self, frame: Frame, offset: usize, out: &mut [u8]) {
        let d = self.data(frame);
        out.copy_from_slice(&d[offset..offset + out.len()]);
    }

    /// Writes a byte range.
    pub fn write_bytes(&mut self, frame: Frame, offset: usize, src: &[u8]) {
        let d = self.data(frame);
        d[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Copies the whole page `src` into `dst` (used by replicate, migrate
    /// and sync operations in the pmap layer).
    pub fn copy_page(&mut self, src: Frame, dst: Frame) {
        debug_assert_ne!(src, dst, "copy_page onto itself");
        // Take the source payload out briefly to satisfy the borrow
        // checker without copying twice.
        let buf = {
            let page_bytes = self.page_bytes;
            let sm = self.module_mut(src.region);
            match &sm.frames[src.index as usize] {
                Some(b) => b.clone(),
                None => vec![0u8; page_bytes].into_boxed_slice(),
            }
        };
        let dm = self.module_mut(dst.region);
        dm.frames[dst.index as usize] = Some(buf);
    }

    /// Fills the page with zeros (the `pmap_zero_page` operation).
    pub fn zero_page(&mut self, frame: Frame) {
        let page_bytes = self.page_bytes;
        let m = self.module_mut(frame.region);
        m.frames[frame.index as usize] = Some(vec![0u8; page_bytes].into_boxed_slice());
    }

    /// FNV-1a checksum of the page's current contents. An untouched
    /// (never-written) frame checksums as a page of zeros, matching what
    /// a copy of it would contain.
    pub fn page_checksum(&self, frame: Frame) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let m = self.module(frame.region);
        let mut h = FNV_OFFSET;
        match &m.frames[frame.index as usize] {
            Some(b) => {
                for &byte in b.iter() {
                    h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
                }
            }
            None => {
                for _ in 0..self.page_bytes {
                    h = h.wrapping_mul(FNV_PRIME);
                }
            }
        }
        h
    }

    /// True if two frames currently hold identical bytes. Used by tests
    /// and by the consistency checker to validate replica coherence.
    pub fn pages_equal(&mut self, a: Frame, b: Frame) -> bool {
        let page_bytes = self.page_bytes;
        let abuf = {
            let m = self.module_mut(a.region);
            m.frames[a.index as usize]
                .clone()
                .unwrap_or_else(|| vec![0u8; page_bytes].into_boxed_slice())
        };
        let m = self.module_mut(b.region);
        let bbuf = m.frames[b.index as usize]
            .clone()
            .unwrap_or_else(|| vec![0u8; page_bytes].into_boxed_slice());
        abuf == bbuf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    fn mem() -> PhysMem {
        PhysMem::new(&TopologyBuilder::small(2).config())
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = mem();
        let total = m.free_frames(MemRegion::Global);
        let f = m.alloc(MemRegion::Global).unwrap();
        assert_eq!(m.free_frames(MemRegion::Global), total - 1);
        assert_eq!(m.used_frames(MemRegion::Global), 1);
        m.free(f);
        assert_eq!(m.free_frames(MemRegion::Global), total);
        assert_eq!(m.peak_used_frames(MemRegion::Global), 1);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut m = mem();
        let region = MemRegion::Local(NodeId(1));
        let n = m.free_frames(region);
        for _ in 0..n {
            m.alloc(region).unwrap();
        }
        assert_eq!(m.alloc(region), Err(MemError::OutOfFrames(region)));
        // The other local module is unaffected.
        assert!(m.alloc(MemRegion::Local(NodeId(0))).is_ok());
    }

    #[test]
    fn alloc_global_at_reserves_specific_frame() {
        let mut m = mem();
        let f = m.alloc_global_at(7).unwrap();
        assert_eq!(f, Frame::global(7));
        assert!(m.alloc_global_at(7).is_err());
        m.free(f);
        assert!(m.alloc_global_at(7).is_ok());
    }

    #[test]
    fn read_write_words_and_bytes() {
        let mut m = mem();
        let f = m.alloc(MemRegion::Global).unwrap();
        m.write_u32(f, 0, 0xdead_beef);
        m.write_u8(f, 100, 7);
        assert_eq!(m.read_u32(f, 0), 0xdead_beef);
        assert_eq!(m.read_u8(f, 100), 7);
        // Untouched bytes read as zero.
        assert_eq!(m.read_u32(f, 8), 0);
    }

    #[test]
    fn copy_page_moves_bytes_across_regions() {
        let mut m = mem();
        let g = m.alloc(MemRegion::Global).unwrap();
        let l = m.alloc(MemRegion::Local(NodeId(0))).unwrap();
        m.write_u32(g, 4, 123);
        m.copy_page(g, l);
        assert_eq!(m.read_u32(l, 4), 123);
        assert!(m.pages_equal(g, l));
        m.write_u32(l, 4, 456);
        assert!(!m.pages_equal(g, l));
        assert_eq!(m.read_u32(g, 4), 123, "copy must not alias");
    }

    #[test]
    fn zero_page_clears_contents() {
        let mut m = mem();
        let f = m.alloc(MemRegion::Global).unwrap();
        m.write_u32(f, 0, 1);
        m.zero_page(f);
        assert_eq!(m.read_u32(f, 0), 0);
    }

    #[test]
    fn quarantined_frame_is_retired_for_good() {
        let mut m = mem();
        let region = MemRegion::Local(NodeId(0));
        let total = m.free_frames(region);
        let f = m.alloc(region).unwrap();
        m.quarantine(f);
        assert!(m.is_quarantined(f));
        assert_eq!(m.quarantined_frames(region), 1);
        assert_eq!(m.quarantined_frames(MemRegion::Global), 0);
        // The frame never returns to the free list; capacity shrank.
        assert_eq!(m.free_frames(region), total - 1);
        let mut seen = Vec::new();
        while let Ok(g) = m.alloc(region) {
            assert_ne!(g, f, "quarantined frame re-allocated");
            seen.push(g);
        }
        assert_eq!(seen.len(), total - 1);
    }

    #[test]
    fn offline_local_loses_every_frame_for_good() {
        let mut m = mem();
        let region = MemRegion::Local(NodeId(0));
        let a = m.alloc(region).unwrap();
        let b = m.alloc(region).unwrap();
        let q = m.alloc(region).unwrap();
        m.quarantine(q);
        m.write_u32(a, 0, 0xfeed);
        assert!(!m.is_offline(NodeId(0)));

        let lost = m.offline_local(NodeId(0));
        assert_eq!(lost, vec![a, b], "allocated, non-quarantined frames reported in order");
        assert!(m.is_offline(NodeId(0)));
        assert!(m.is_offline_frame(a));
        assert!(!m.is_offline_frame(Frame::global(0)));
        // Nothing can ever be allocated there again...
        assert_eq!(m.free_frames(region), 0);
        assert_eq!(m.alloc(region), Err(MemError::OutOfFrames(region)));
        // ...the bytes are gone...
        assert_eq!(m.read_u32(a, 0), 0, "payloads dropped with the module");
        // ...freeing a dead frame is a tolerated no-op...
        m.free(a);
        assert_eq!(m.free_frames(region), 0);
        // ...death is idempotent, and the other module is unaffected.
        assert!(m.offline_local(NodeId(0)).is_empty());
        assert!(!m.is_offline(NodeId(1)));
        assert!(m.alloc(MemRegion::Local(NodeId(1))).is_ok());
    }

    #[test]
    fn page_checksum_tracks_contents() {
        let mut m = mem();
        let a = m.alloc(MemRegion::Global).unwrap();
        let b = m.alloc(MemRegion::Local(NodeId(0))).unwrap();
        // Untouched frames checksum like explicit zero pages.
        let untouched = m.page_checksum(a);
        m.zero_page(b);
        assert_eq!(untouched, m.page_checksum(b));
        m.write_u32(a, 12, 0xfeed);
        assert_ne!(m.page_checksum(a), untouched);
        m.copy_page(a, b);
        assert_eq!(m.page_checksum(a), m.page_checksum(b));
        // A single flipped byte is visible.
        let before = m.page_checksum(b);
        let byte = m.read_u8(b, 99);
        m.write_u8(b, 99, byte ^ 0x40);
        assert_ne!(m.page_checksum(b), before);
    }

    #[test]
    fn last_touch_stamps_track_references_and_reset_on_alloc() {
        let mut m = mem();
        let f = m.alloc(MemRegion::Local(NodeId(0))).unwrap();
        assert_eq!(m.last_touch(f), Ns::ZERO);
        m.touch(f, Ns(42));
        assert_eq!(m.last_touch(f), Ns(42));
        m.touch(f, Ns(99));
        assert_eq!(m.last_touch(f), Ns(99));
        // Freeing and re-allocating the frame clears the stale stamp.
        m.free(f);
        let g = m.alloc(MemRegion::Local(NodeId(0))).unwrap();
        assert_eq!(g, f, "LIFO free list hands the same frame back");
        assert_eq!(m.last_touch(g), Ns::ZERO);
        // alloc_global_at resets too.
        let h = m.alloc_global_at(3).unwrap();
        assert_eq!(m.last_touch(h), Ns::ZERO);
    }

    #[test]
    fn copy_of_untouched_page_is_zeros() {
        let mut m = mem();
        let g = m.alloc(MemRegion::Global).unwrap();
        let l = m.alloc(MemRegion::Local(NodeId(1))).unwrap();
        m.write_u32(l, 0, 9);
        m.copy_page(g, l);
        assert_eq!(m.read_u32(l, 0), 0);
    }
}
