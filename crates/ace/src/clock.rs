//! Per-processor user/system time accounting.
//!
//! The paper separates *user* time (what `time(1)` reported for the
//! application, the quantity in Table 3) from *system* time (kernel
//! overhead including NUMA page movement, the quantity in Table 4). The
//! simulator keeps both per processor, in exact virtual nanoseconds.

use crate::time::Ns;
use crate::types::CpuId;

/// Accumulated time of one processor.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CpuTime {
    /// Time spent executing application code, including its memory
    /// reference costs.
    pub user: Ns,
    /// Time spent in the kernel: fault handling, page copies, mapping
    /// maintenance.
    pub system: Ns,
}

impl CpuTime {
    /// User plus system time.
    pub fn total(self) -> Ns {
        self.user + self.system
    }
}

/// The clocks of every processor in the machine.
#[derive(Clone, Debug)]
pub struct CpuClocks {
    times: Vec<CpuTime>,
}

impl CpuClocks {
    /// All-zero clocks for `n_cpus` processors.
    pub fn new(n_cpus: usize) -> CpuClocks {
        CpuClocks { times: vec![CpuTime::default(); n_cpus] }
    }

    /// Charges user time to `cpu`.
    #[inline]
    pub fn charge_user(&mut self, cpu: CpuId, t: Ns) {
        self.times[cpu.index()].user += t;
    }

    /// Charges system time to `cpu`.
    #[inline]
    pub fn charge_system(&mut self, cpu: CpuId, t: Ns) {
        self.times[cpu.index()].system += t;
    }

    /// The accumulated times of `cpu`.
    #[inline]
    pub fn cpu(&self, cpu: CpuId) -> CpuTime {
        self.times[cpu.index()]
    }

    /// Per-cpu snapshot.
    pub fn all(&self) -> &[CpuTime] {
        &self.times
    }

    /// Sum of user time over all processors (the paper's "total user
    /// time", eliminating concurrency artifacts).
    pub fn total_user(&self) -> Ns {
        self.times.iter().map(|t| t.user).sum()
    }

    /// Sum of system time over all processors.
    pub fn total_system(&self) -> Ns {
        self.times.iter().map(|t| t.system).sum()
    }

    /// Resets every clock to zero (used between measurement phases).
    pub fn reset(&mut self) {
        for t in &mut self.times {
            *t = CpuTime::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_cpu() {
        let mut c = CpuClocks::new(2);
        c.charge_user(CpuId(0), Ns(100));
        c.charge_user(CpuId(1), Ns(50));
        c.charge_system(CpuId(0), Ns(7));
        assert_eq!(c.cpu(CpuId(0)).user, Ns(100));
        assert_eq!(c.cpu(CpuId(0)).system, Ns(7));
        assert_eq!(c.cpu(CpuId(0)).total(), Ns(107));
        assert_eq!(c.total_user(), Ns(150));
        assert_eq!(c.total_system(), Ns(7));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = CpuClocks::new(1);
        c.charge_user(CpuId(0), Ns(5));
        c.charge_system(CpuId(0), Ns(5));
        c.reset();
        assert_eq!(c.total_user(), Ns::ZERO);
        assert_eq!(c.total_system(), Ns::ZERO);
    }
}
