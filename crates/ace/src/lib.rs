//! Simulated IBM ACE multiprocessor workstation.
//!
//! The ACE (Advanced Computing Environment) was a NUMA workstation built at
//! the IBM T. J. Watson Research Center: up to eight ROMP-C processor
//! modules, each with a Rosetta-C memory management unit and 8 MB of local
//! memory, plus up to 256 MB of global memory, all connected by an 80 MB/s
//! Inter-Processor Communication (IPC) bus. Every processor can address any
//! memory, but local memory is roughly twice as fast as global memory
//! (2.3x on fetches, 1.7x on stores).
//!
//! This crate models the pieces of that machine that the SOSP '89 NUMA
//! memory management work depends on:
//!
//! * [`MachineConfig`] — processor count, memory sizes, page size, and the
//!   access-cost model with the paper's measured constants;
//! * [`PhysMem`] — physical page frames holding real bytes, split into one
//!   global region and one local region per processor, with per-region
//!   frame allocators;
//! * [`Mmu`] — a Rosetta-like per-processor MMU, including Rosetta's
//!   restriction of a single virtual address per physical page per
//!   processor;
//! * [`Machine`] — the assembled machine: memory, MMUs, per-processor
//!   user/system clocks, and IPC-bus accounting.
//!
//! Everything above this layer (the Mach-style VM, the NUMA manager, the
//! execution engine) manipulates the machine only through these types, just
//! as the paper's pmap layer sat between Mach and the Rosetta hardware.

pub mod bus;
pub mod clock;
pub mod config;
pub mod fault;
pub mod machine;
pub mod mem;
pub mod mmu;
pub mod prot;
pub mod time;
pub mod topology;
pub mod types;

pub use bus::{BusQueue, BusStats};
pub use clock::{CpuClocks, CpuTime};
pub use config::{MachineConfig, PageSize};
pub use fault::{BusTimeout, CopyFault, FaultConfig, FaultInjector, FaultStats, HardFault};
pub use machine::{Machine, MachineEvent, MachineTap};
pub use mem::{Frame, MemError, MemRegion, PhysMem};
pub use mmu::{AccessKind, Mmu, MmuFault};
pub use prot::Prot;
pub use time::{Access, CostModel, Distance, Ns};
pub use topology::{HopCost, Topology, TopologyBuilder};
pub use types::{CpuId, CpuSet, NodeId};
