//! Small identifier types shared across the machine model.

use std::fmt;

/// Identifies one processor module of the machine.
///
/// The ACE backplane holds at most eight processors, but the IPC bus was
/// designed for sixteen; we allow up to [`CpuId::MAX_CPUS`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CpuId(pub u16);

impl CpuId {
    /// Upper bound on processors per machine, chosen so a [`CpuSet`] fits
    /// in a single `u64`.
    pub const MAX_CPUS: usize = 64;

    /// Returns the id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<usize> for CpuId {
    fn from(v: usize) -> Self {
        debug_assert!(v < Self::MAX_CPUS);
        CpuId(v as u16)
    }
}

/// Identifies one memory node (one local-memory module) of the machine.
///
/// On the paper's flat ACE every processor module carries its own local
/// memory, so nodes and processors coincide one-to-one and a `NodeId`
/// equals the index of the `CpuId` it serves. Hierarchical topologies
/// (two-socket, mesh) break that identity: several processors share one
/// node, and the distance matrix is indexed by node, not processor. The
/// newtype keeps the two index spaces apart at compile time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Upper bound on memory nodes per machine (a node can never
    /// outnumber the processors it serves).
    pub const MAX_NODES: usize = CpuId::MAX_CPUS;

    /// Returns the id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        debug_assert!(v < Self::MAX_NODES);
        NodeId(v as u16)
    }
}

/// A set of processors, used by the NUMA directory to track which local
/// memories hold replicas of a page.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct CpuSet(u64);

impl CpuSet {
    /// The empty set.
    pub const EMPTY: CpuSet = CpuSet(0);

    /// Returns a set containing only `cpu`.
    #[inline]
    pub fn singleton(cpu: CpuId) -> Self {
        CpuSet(1u64 << cpu.index())
    }

    /// Returns a set containing cpus `0..n`.
    pub fn first_n(n: usize) -> Self {
        debug_assert!(n <= CpuId::MAX_CPUS);
        if n == 64 {
            CpuSet(u64::MAX)
        } else {
            CpuSet((1u64 << n) - 1)
        }
    }

    /// True if the set holds no processors.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of processors in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if `cpu` is in the set.
    #[inline]
    pub fn contains(self, cpu: CpuId) -> bool {
        self.0 & (1u64 << cpu.index()) != 0
    }

    /// Adds `cpu` to the set.
    #[inline]
    pub fn insert(&mut self, cpu: CpuId) {
        self.0 |= 1u64 << cpu.index();
    }

    /// Removes `cpu` from the set.
    #[inline]
    pub fn remove(&mut self, cpu: CpuId) {
        self.0 &= !(1u64 << cpu.index());
    }

    /// Set difference.
    #[inline]
    pub fn without(self, cpu: CpuId) -> Self {
        CpuSet(self.0 & !(1u64 << cpu.index()))
    }

    /// Iterates over the processors in the set in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = CpuId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(CpuId(i as u16))
            }
        })
    }

    /// Returns the sole member if the set is a singleton.
    pub fn only(self) -> Option<CpuId> {
        if self.0.count_ones() == 1 {
            Some(CpuId(self.0.trailing_zeros() as u16))
        } else {
            None
        }
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|c| c.0)).finish()
    }
}

impl FromIterator<CpuId> for CpuSet {
    fn from_iter<T: IntoIterator<Item = CpuId>>(iter: T) -> Self {
        let mut s = CpuSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuset_insert_remove_contains() {
        let mut s = CpuSet::EMPTY;
        assert!(s.is_empty());
        s.insert(CpuId(3));
        s.insert(CpuId(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(CpuId(3)));
        assert!(!s.contains(CpuId(1)));
        s.remove(CpuId(3));
        assert_eq!(s.only(), Some(CpuId(0)));
    }

    #[test]
    fn cpuset_iter_order() {
        let s: CpuSet = [CpuId(5), CpuId(1), CpuId(9)].into_iter().collect();
        let v: Vec<u16> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![1, 5, 9]);
    }

    #[test]
    fn cpuset_first_n() {
        let s = CpuSet::first_n(4);
        assert_eq!(s.len(), 4);
        assert!(s.contains(CpuId(0)) && s.contains(CpuId(3)));
        assert!(!s.contains(CpuId(4)));
        assert_eq!(CpuSet::first_n(64).len(), 64);
        assert!(CpuSet::first_n(0).is_empty());
    }

    #[test]
    fn cpuset_without_and_only() {
        let s = CpuSet::singleton(CpuId(7));
        assert_eq!(s.only(), Some(CpuId(7)));
        assert!(s.without(CpuId(7)).is_empty());
        assert_eq!(s.without(CpuId(3)), s);
    }
}
