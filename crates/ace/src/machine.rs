//! The assembled machine.

use crate::bus::{BusQueue, BusStats};
use crate::clock::CpuClocks;
use crate::config::MachineConfig;
use crate::fault::{BusTimeout, CopyFault, FaultInjector};
use crate::mem::{Frame, MemRegion, PhysMem};
use crate::mmu::Mmu;
use crate::time::{Access, Distance, Ns};
use crate::types::{CpuId, NodeId};

/// A hardware-level occurrence, reported through the machine's tap (see
/// [`Machine::set_tap`]). The machine speaks in frames and regions — it
/// knows nothing about logical pages or policies; the layers above
/// translate these into their own vocabulary.
///
/// Every variant carries the acting processor and that processor's
/// virtual clock *after* the cost was charged, so a tap sees a
/// monotonically non-decreasing clock per processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineEvent {
    /// A memory access was charged.
    Access {
        /// The referencing processor.
        cpu: CpuId,
        /// Fetch or store.
        kind: Access,
        /// Where the reference was served from.
        dist: Distance,
        /// Width in 32-bit words.
        words: u64,
        /// The processor's clock after the charge.
        t: Ns,
    },
    /// A whole page was copied.
    PageCopy {
        /// The processor charged for the copy.
        cpu: CpuId,
        /// Source region.
        from: MemRegion,
        /// Destination region.
        to: MemRegion,
        /// The processor's clock after the charge.
        t: Ns,
    },
    /// A page copy was aborted by an injected bus timeout.
    CopyTimeout {
        /// The processor charged for the aborted transfer.
        cpu: CpuId,
        /// Source region.
        from: MemRegion,
        /// Destination region.
        to: MemRegion,
        /// The processor's clock after the charge.
        t: Ns,
    },
    /// A frame was zero-filled.
    PageZero {
        /// The processor charged for the stores.
        cpu: CpuId,
        /// The zeroed frame's region.
        region: MemRegion,
        /// The processor's clock after the charge.
        t: Ns,
    },
    /// The fixed fault overhead was charged.
    FaultOverhead {
        /// The faulting processor.
        cpu: CpuId,
        /// The processor's clock after the charge.
        t: Ns,
    },
    /// A shootdown was charged.
    Shootdown {
        /// The processor charged (the requester, not the victim).
        cpu: CpuId,
        /// The processor's clock after the charge.
        t: Ns,
    },
}

/// The machine's event tap: a closure invoked synchronously at each
/// charge site. `None` (the default) costs one branch per site.
pub type MachineTap = Box<dyn FnMut(MachineEvent) + Send>;

/// One simulated ACE: physical memory, one MMU per processor, per-
/// processor clocks and bus accounting.
///
/// The machine is deliberately passive: it knows nothing about virtual
/// memory policy. The Mach-style VM and the NUMA pmap layer drive it.
pub struct Machine {
    /// Static configuration.
    pub config: MachineConfig,
    /// All physical page frames.
    pub mem: PhysMem,
    /// Translation hardware, indexed by processor.
    pub mmus: Vec<Mmu>,
    /// User/system clocks per processor.
    pub clocks: CpuClocks,
    /// IPC bus traffic counters.
    pub bus: BusStats,
    /// FCFS bus queue (consulted only when `config.bus_contention`).
    pub bus_queue: BusQueue,
    /// Deterministic fault source (inert unless `config.faults` enables
    /// it or a test scripts faults directly).
    pub fault: FaultInjector,
    /// Optional event tap; see [`Machine::set_tap`].
    tap: Option<MachineTap>,
}

impl Machine {
    /// Builds a machine from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`MachineConfig::validate`] to check first.
    pub fn new(cfg: MachineConfig) -> Machine {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine configuration: {e}");
        }
        Machine {
            mem: PhysMem::new(&cfg),
            mmus: (0..cfg.n_cpus()).map(|_| Mmu::new()).collect(),
            clocks: CpuClocks::new(cfg.n_cpus()),
            bus: BusStats::default(),
            bus_queue: BusQueue::default(),
            fault: FaultInjector::new(cfg.faults.clone()),
            tap: None,
            config: cfg,
        }
    }

    /// Installs an event tap. The tap is called synchronously at every
    /// charge site, *after* the cost has been charged; it observes the
    /// machine but never affects timing, so a run with a tap installed
    /// is cost-identical to one without.
    pub fn set_tap(&mut self, tap: MachineTap) {
        self.tap = Some(tap);
    }

    /// Removes and returns the event tap, if any.
    pub fn take_tap(&mut self) -> Option<MachineTap> {
        self.tap.take()
    }

    #[inline]
    fn emit(&mut self, event: MachineEvent) {
        if let Some(tap) = self.tap.as_mut() {
            tap(event);
        }
    }

    /// Number of processors.
    #[inline]
    pub fn n_cpus(&self) -> usize {
        self.config.n_cpus()
    }

    /// Iterator over all processor ids.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.config.n_cpus()).map(CpuId::from)
    }

    /// The MMU of one processor.
    #[inline]
    pub fn mmu(&mut self, cpu: CpuId) -> &mut Mmu {
        &mut self.mmus[cpu.index()]
    }

    /// The node whose local memory serves `cpu`.
    #[inline]
    pub fn home_of(&self, cpu: CpuId) -> NodeId {
        self.config.topology.home_of(cpu)
    }

    /// How far `region` is from `cpu` — the three-way classification the
    /// observers and reference traces speak. Any local memory that is
    /// not the processor's own node counts as remote, regardless of how
    /// many hops away it sits; the hop matrix refines the *cost* of a
    /// remote reference, not its class.
    #[inline]
    pub fn distance(&self, cpu: CpuId, region: MemRegion) -> Distance {
        match region {
            MemRegion::Global => Distance::Global,
            MemRegion::Local(node) if node == self.home_of(cpu) => Distance::Local,
            MemRegion::Local(_) => Distance::Remote,
        }
    }

    /// The cost of one 32-bit access of `kind` from `cpu` to memory in
    /// `region`: global memory charges the cost model's bus constants,
    /// local memory charges the topology's row for the hop count between
    /// the processor's home node and the frame's node.
    #[inline]
    fn ref_cost(&self, cpu: CpuId, kind: Access, region: MemRegion) -> Ns {
        match region {
            MemRegion::Global => self.config.costs.access(kind, Distance::Global),
            MemRegion::Local(node) => {
                let hop = self.config.topology.hops(self.home_of(cpu), node);
                self.config.topology.access_cost(kind, hop)
            }
        }
    }

    /// Charges `cpu` the *user-time* cost of `words` 32-bit accesses of
    /// kind `kind` to `frame`, recording bus traffic, and returns the
    /// charged time.
    pub fn charge_access(&mut self, cpu: CpuId, kind: Access, frame: Frame, words: u64) -> Ns {
        let dist = self.distance(cpu, frame.region);
        let mut t = self.ref_cost(cpu, kind, frame.region) * words;
        match dist {
            Distance::Global => self.bus.add_global(words),
            Distance::Remote => self.bus.add_remote(words),
            Distance::Local => {}
        }
        if self.config.bus_contention && dist != Distance::Local {
            let now = self.clocks.cpu(cpu).total();
            t += self.bus_queue.acquire(now, words);
        }
        self.clocks.charge_user(cpu, t);
        self.mem.touch(frame, self.clocks.cpu(cpu).total());
        if self.tap.is_some() {
            let now = self.clocks.cpu(cpu).total();
            self.emit(MachineEvent::Access { cpu, kind, dist, words, t: now });
        }
        t
    }

    /// True when `n` identical accesses at `dist` are indistinguishable
    /// from one batched arithmetic charge: no event tap listening (taps
    /// see per-access timestamps) and no bus queue advancing per access.
    pub fn batchable(&self, dist: Distance) -> bool {
        self.tap.is_none() && !(self.config.bus_contention && dist != Distance::Local)
    }

    /// The queueing-free cost of one `words`-word access of `kind` by
    /// `cpu` to memory in `region` — the per-element step
    /// [`Machine::charge_access`] charges when no bus queue applies.
    pub fn access_cost(&self, cpu: CpuId, kind: Access, region: MemRegion, words: u64) -> Ns {
        self.ref_cost(cpu, kind, region) * words
    }

    /// Charges `n` identical accesses in one arithmetic step. Requires
    /// [`Machine::batchable`] for the frame's distance; bus counters and
    /// the processor clock end up exactly where `n` calls of
    /// [`Machine::charge_access`] would leave them.
    pub fn charge_access_n(
        &mut self,
        cpu: CpuId,
        kind: Access,
        frame: Frame,
        words: u64,
        n: u64,
    ) -> Ns {
        let dist = self.distance(cpu, frame.region);
        debug_assert!(self.batchable(dist), "batched charge with an observer attached");
        match dist {
            Distance::Global => self.bus.add_global(words * n),
            Distance::Remote => self.bus.add_remote(words * n),
            Distance::Local => {}
        }
        let t = self.access_cost(cpu, kind, frame.region, words) * n;
        self.clocks.charge_user(cpu, t);
        self.mem.touch(frame, self.clocks.cpu(cpu).total());
        t
    }

    /// Copies page `src` to `dst`, charging the copy cost as *system*
    /// time to `cpu` and recording bus traffic if the copy crosses the
    /// bus. Returns the charged time.
    pub fn kernel_copy_page(&mut self, cpu: CpuId, src: Frame, dst: Frame) -> Ns {
        self.mem.copy_page(src, dst);
        let words = (self.config.page_size.bytes() / 4) as u64;
        let crosses_bus = src.region != dst.region;
        if crosses_bus {
            self.bus.add_copy(words);
        }
        // A copy between two local memories charges the topology's
        // per-hop copy word (the flat presets pin every row to the cost
        // model's word, reproducing the paper's uniform copy charge);
        // any copy touching global memory crosses the IPC bus and
        // charges the cost model directly.
        let t = match (src.region, dst.region) {
            (MemRegion::Local(a), MemRegion::Local(b)) => {
                let hop = self.config.topology.hops(a, b);
                self.config.costs.copy_setup + self.config.topology.hop_cost(hop).copy_word * words
            }
            _ => self.config.costs.page_copy(self.config.page_size.bytes()),
        };
        self.clocks.charge_system(cpu, t);
        self.mem.touch(dst, self.clocks.cpu(cpu).total());
        if self.tap.is_some() {
            let now = self.clocks.cpu(cpu).total();
            self.emit(MachineEvent::PageCopy { cpu, from: src.region, to: dst.region, t: now });
        }
        t
    }

    /// Like [`kernel_copy_page`], but subject to fault injection.
    ///
    /// A bus-crossing copy may be aborted by an injected transient
    /// timeout: the destination is untouched, only the transfer setup
    /// cost is charged (no data moved, so no bus traffic is recorded),
    /// and `Err(BusTimeout)` asks the caller to retry. The copy may also
    /// complete but silently flip one byte of the destination — that
    /// case still returns `Ok`; only a checksum over the destination can
    /// reveal it. With fault injection inert this is byte- and
    /// cost-identical to [`kernel_copy_page`].
    ///
    /// [`kernel_copy_page`]: Machine::kernel_copy_page
    pub fn try_kernel_copy_page(
        &mut self,
        cpu: CpuId,
        src: Frame,
        dst: Frame,
    ) -> Result<Ns, BusTimeout> {
        let crosses_bus = src.region != dst.region;
        match self.fault.copy_fault(crosses_bus) {
            Some(CopyFault::BusTimeout) => {
                let t = self.config.costs.copy_setup;
                self.clocks.charge_system(cpu, t);
                if self.tap.is_some() {
                    let now = self.clocks.cpu(cpu).total();
                    self.emit(MachineEvent::CopyTimeout {
                        cpu,
                        from: src.region,
                        to: dst.region,
                        t: now,
                    });
                }
                Err(BusTimeout)
            }
            Some(CopyFault::Corruption) => {
                let t = self.kernel_copy_page(cpu, src, dst);
                let (offset, mask) = self.fault.corruption_site(self.config.page_size.bytes());
                let byte = self.mem.read_u8(dst, offset);
                self.mem.write_u8(dst, offset, byte ^ mask);
                Ok(t)
            }
            None => Ok(self.kernel_copy_page(cpu, src, dst)),
        }
    }

    /// Zero-fills `frame`, charging `cpu` system time for the stores.
    pub fn kernel_zero_page(&mut self, cpu: CpuId, frame: Frame) -> Ns {
        self.mem.zero_page(frame);
        let words = (self.config.page_size.bytes() / 4) as u64;
        let t = self.ref_cost(cpu, Access::Store, frame.region) * words;
        self.clocks.charge_system(cpu, t);
        self.mem.touch(frame, self.clocks.cpu(cpu).total());
        if self.tap.is_some() {
            let now = self.clocks.cpu(cpu).total();
            self.emit(MachineEvent::PageZero { cpu, region: frame.region, t: now });
        }
        t
    }

    /// Charges the fixed fault-handling overhead to `cpu` as system time.
    pub fn charge_fault_overhead(&mut self, cpu: CpuId) {
        let t = self.config.costs.fault_overhead;
        self.clocks.charge_system(cpu, t);
        if self.tap.is_some() {
            let now = self.clocks.cpu(cpu).total();
            self.emit(MachineEvent::FaultOverhead { cpu, t: now });
        }
    }

    /// Takes `node`'s local memory module offline — a hard component
    /// failure. Every frame it held is permanently lost; the list of
    /// frames that were allocated at the moment of death is returned
    /// (in index order) so the layer above can shoot down their
    /// mappings and recover each page. The node's processors keep
    /// running; only their memory is gone. Idempotent.
    pub fn offline_node(&mut self, node: NodeId) -> Vec<Frame> {
        self.mem.offline_local(node)
    }

    /// True if `node`'s local memory module has gone offline.
    #[inline]
    pub fn node_offline(&self, node: NodeId) -> bool {
        self.mem.is_offline(node)
    }

    /// Charges the cost of removing a mapping on another processor.
    pub fn charge_shootdown(&mut self, cpu: CpuId) {
        let t = self.config.costs.shootdown;
        self.clocks.charge_system(cpu, t);
        if self.tap.is_some() {
            let now = self.clocks.cpu(cpu).total();
            self.emit(MachineEvent::Shootdown { cpu, t: now });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prot::Prot;

    fn machine() -> Machine {
        Machine::new(crate::topology::TopologyBuilder::small(2).config())
    }

    #[test]
    fn charge_paths_stamp_last_touch() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        let l = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        assert_eq!(m.mem.last_touch(g), Ns::ZERO);
        m.charge_access(CpuId(0), Access::Fetch, g, 1);
        let after_access = m.mem.last_touch(g);
        assert!(after_access > Ns::ZERO, "charge_access stamps the frame");
        assert_eq!(after_access, m.clocks.cpu(CpuId(0)).total());
        m.charge_access_n(CpuId(0), Access::Fetch, l, 1, 8);
        assert_eq!(m.mem.last_touch(l), m.clocks.cpu(CpuId(0)).total());
        // Kernel copies and zero-fills stamp the destination frame too.
        m.kernel_copy_page(CpuId(0), g, l);
        assert_eq!(m.mem.last_touch(l), m.clocks.cpu(CpuId(0)).total());
        m.kernel_zero_page(CpuId(0), g);
        assert_eq!(m.mem.last_touch(g), m.clocks.cpu(CpuId(0)).total());
    }

    #[test]
    fn distance_classification() {
        let m = machine();
        assert_eq!(m.distance(CpuId(0), MemRegion::Global), Distance::Global);
        assert_eq!(m.distance(CpuId(0), MemRegion::Local(NodeId(0))), Distance::Local);
        assert_eq!(m.distance(CpuId(0), MemRegion::Local(NodeId(1))), Distance::Remote);
    }

    #[test]
    fn charge_access_updates_clock_and_bus() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        let t = m.charge_access(CpuId(0), Access::Fetch, g, 3);
        assert_eq!(t, Ns(1_500 * 3));
        assert_eq!(m.clocks.cpu(CpuId(0)).user, t);
        assert_eq!(m.bus.global_word_transfers, 3);

        let l = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        let t2 = m.charge_access(CpuId(0), Access::Store, l, 1);
        assert_eq!(t2, Ns(840));
        // Local access adds no bus traffic.
        assert_eq!(m.bus.total_bytes(), 3 * 4);
    }

    #[test]
    fn kernel_copy_charges_system_time() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        let l = m.mem.alloc(MemRegion::Local(NodeId(1))).unwrap();
        m.mem.write_u32(g, 0, 77);
        let t = m.kernel_copy_page(CpuId(1), g, l);
        assert_eq!(m.mem.read_u32(l, 0), 77);
        assert_eq!(m.clocks.cpu(CpuId(1)).system, t);
        assert_eq!(m.clocks.cpu(CpuId(1)).user, Ns::ZERO);
        assert!(m.bus.copy_word_transfers > 0);
    }

    #[test]
    fn local_to_local_same_cpu_copy_skips_bus() {
        let mut m = machine();
        let a = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        let b = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        m.kernel_copy_page(CpuId(0), a, b);
        assert_eq!(m.bus.copy_word_transfers, 0);
    }

    #[test]
    fn zero_page_charges_and_zeroes() {
        let mut m = machine();
        let l = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        m.mem.write_u32(l, 0, 5);
        m.kernel_zero_page(CpuId(0), l);
        assert_eq!(m.mem.read_u32(l, 0), 0);
        assert!(m.clocks.cpu(CpuId(0)).system > Ns::ZERO);
    }

    #[test]
    fn try_copy_without_faults_matches_plain_copy() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        let l = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        m.mem.write_u32(g, 0, 31);
        let t = m.try_kernel_copy_page(CpuId(0), g, l).unwrap();
        assert_eq!(t, m.config.costs.page_copy(m.config.page_size.bytes()));
        assert_eq!(m.mem.read_u32(l, 0), 31);
    }

    #[test]
    fn scripted_bus_timeout_leaves_destination_untouched() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        let l = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        m.mem.write_u32(g, 0, 7);
        m.mem.write_u32(l, 0, 99);
        m.fault.script_copy_fault(crate::fault::CopyFault::BusTimeout);
        assert_eq!(m.try_kernel_copy_page(CpuId(0), g, l), Err(BusTimeout));
        // Destination unchanged, no data crossed the bus, but the
        // aborted transaction's setup time was charged.
        assert_eq!(m.mem.read_u32(l, 0), 99);
        assert_eq!(m.bus.copy_word_transfers, 0);
        assert_eq!(m.clocks.cpu(CpuId(0)).system, m.config.costs.copy_setup);
        // The retry succeeds.
        assert_eq!(m.mem.read_u32(l, 0), 99);
        m.try_kernel_copy_page(CpuId(0), g, l).unwrap();
        assert_eq!(m.mem.read_u32(l, 0), 7);
    }

    #[test]
    fn scripted_corruption_flips_exactly_one_byte() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        let l = m.mem.alloc(MemRegion::Local(NodeId(1))).unwrap();
        m.mem.write_u32(g, 0, 0x0101_0101);
        m.fault.script_copy_fault(crate::fault::CopyFault::Corruption);
        m.try_kernel_copy_page(CpuId(1), g, l).unwrap();
        let page = m.config.page_size.bytes();
        let mut diffs = 0;
        for off in 0..page {
            if m.mem.read_u8(g, off) != m.mem.read_u8(l, off) {
                diffs += 1;
            }
        }
        assert_eq!(diffs, 1, "silent corruption flips exactly one byte");
        assert_ne!(m.mem.page_checksum(g), m.mem.page_checksum(l));
    }

    #[test]
    fn tap_observes_charges_without_changing_costs() {
        use std::sync::{Arc, Mutex};
        let mut plain = machine();
        let mut tapped = machine();
        let log: Arc<Mutex<Vec<MachineEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let events = log.clone();
        tapped.set_tap(Box::new(move |e| events.lock().unwrap().push(e)));
        for m in [&mut plain, &mut tapped] {
            let g = m.mem.alloc(MemRegion::Global).unwrap();
            let l = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
            m.charge_access(CpuId(0), Access::Fetch, g, 2);
            m.kernel_copy_page(CpuId(0), g, l);
            m.kernel_zero_page(CpuId(0), l);
            m.charge_fault_overhead(CpuId(0));
            m.charge_shootdown(CpuId(0));
        }
        // The tap observes but never charges.
        assert_eq!(plain.clocks.cpu(CpuId(0)).total(), tapped.clocks.cpu(CpuId(0)).total());
        assert_eq!(plain.bus.total_bytes(), tapped.bus.total_bytes());
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 5);
        assert!(matches!(
            log[0],
            MachineEvent::Access { kind: Access::Fetch, dist: Distance::Global, words: 2, .. }
        ));
        assert!(matches!(log[1], MachineEvent::PageCopy { .. }));
        assert!(matches!(log[4], MachineEvent::Shootdown { .. }));
    }

    #[test]
    fn tap_sees_copy_timeouts() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        let l = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let events = log.clone();
        m.set_tap(Box::new(move |e| events.lock().unwrap().push(e)));
        m.fault.script_copy_fault(crate::fault::CopyFault::BusTimeout);
        assert_eq!(m.try_kernel_copy_page(CpuId(0), g, l), Err(BusTimeout));
        m.try_kernel_copy_page(CpuId(0), g, l).unwrap();
        let log = log.lock().unwrap();
        assert!(matches!(log[0], MachineEvent::CopyTimeout { .. }));
        assert!(matches!(log[1], MachineEvent::PageCopy { .. }));
        assert!(m.take_tap().is_some());
    }

    #[test]
    fn mmus_are_per_cpu() {
        let mut m = machine();
        let g = m.mem.alloc(MemRegion::Global).unwrap();
        m.mmu(CpuId(0)).enter(1, 10, g, Prot::READ);
        assert!(m.mmu(CpuId(0)).probe(1, 10).is_some());
        assert!(m.mmu(CpuId(1)).probe(1, 10).is_none());
    }
}
