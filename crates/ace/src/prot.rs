//! Page protections.

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// A page protection: some combination of read and write permission.
///
/// Mach's pmap interface passes protections both as what the user is
/// *allowed* to do (the maximum) and, in the paper's extension, the
/// strictest protection that still resolves the current fault (the
/// minimum). Values are ordered by permissiveness: `NONE < READ <
/// READ_WRITE` (write access on this architecture implies read).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prot(u8);

impl Prot {
    /// No access.
    pub const NONE: Prot = Prot(0);
    /// Read-only access.
    pub const READ: Prot = Prot(1);
    /// Read and write access.
    pub const READ_WRITE: Prot = Prot(3);

    /// True if the protection permits reads.
    #[inline]
    pub fn allows_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if the protection permits writes.
    #[inline]
    pub fn allows_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// The weaker (stricter) of two protections.
    #[inline]
    pub fn min(self, other: Prot) -> Prot {
        Prot(self.0 & other.0)
    }

    /// The stronger (looser) of two protections.
    #[inline]
    pub fn max(self, other: Prot) -> Prot {
        Prot(self.0 | other.0)
    }
}

impl BitAnd for Prot {
    type Output = Prot;
    fn bitand(self, rhs: Prot) -> Prot {
        self.min(rhs)
    }
}

impl BitOr for Prot {
    type Output = Prot;
    fn bitor(self, rhs: Prot) -> Prot {
        self.max(rhs)
    }
}

impl fmt::Debug for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Prot::NONE => write!(f, "---"),
            Prot::READ => write!(f, "r--"),
            Prot::READ_WRITE => write!(f, "rw-"),
            _ => write!(f, "prot({})", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_queries() {
        assert!(!Prot::NONE.allows_read());
        assert!(Prot::READ.allows_read());
        assert!(!Prot::READ.allows_write());
        assert!(Prot::READ_WRITE.allows_write());
        assert!(Prot::READ_WRITE.allows_read());
    }

    #[test]
    fn ordering_by_permissiveness() {
        assert!(Prot::NONE < Prot::READ);
        assert!(Prot::READ < Prot::READ_WRITE);
    }

    #[test]
    fn min_max_lattice() {
        assert_eq!(Prot::READ.min(Prot::READ_WRITE), Prot::READ);
        assert_eq!(Prot::READ.max(Prot::READ_WRITE), Prot::READ_WRITE);
        assert_eq!(Prot::NONE.max(Prot::READ), Prot::READ);
        assert_eq!(Prot::READ & Prot::READ_WRITE, Prot::READ);
        assert_eq!(Prot::READ | Prot::READ_WRITE, Prot::READ_WRITE);
    }
}
