//! Per-processor memory management unit, modelled on the Rosetta-C.
//!
//! Each ACE processor module translates virtual addresses through its own
//! Rosetta MMU. Two properties of that hardware matter to the NUMA layer:
//!
//! * translations are per-processor, so the same virtual page can map to
//!   *different* physical frames on different processors — this is what
//!   makes page replication in local memories possible at all; and
//! * Rosetta's inverted page table allows only **one virtual address per
//!   physical page per processor**; entering a second virtual mapping for
//!   a frame silently displaces the first, producing an extra fault when
//!   the displaced address is touched again (section 2.3.1 of the paper).
//!
//! A mapping is identified by an address-space id (one per pmap/task) and
//! a virtual page number.

use crate::mem::Frame;
use crate::prot::Prot;
use crate::time::Access;
use std::collections::HashMap;

/// Address-space identifier (one per pmap).
pub type Asid = u32;

/// A virtual page number within an address space.
pub type Vpn = u64;

/// Why a translation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MmuFault {
    /// No translation present for the virtual page.
    NotMapped,
    /// A translation exists but does not permit the attempted access.
    Protection {
        /// The protection the existing mapping carries.
        have: Prot,
    },
}

/// One entry of the (per-processor) translation table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mapping {
    /// Physical frame the page maps to.
    pub frame: Frame,
    /// Permissions of this mapping (may be stricter than what the user is
    /// allowed; the NUMA layer tightens protections to drive its
    /// consistency protocol).
    pub prot: Prot,
    /// Hardware referenced bit (set on any successful translation).
    pub referenced: bool,
    /// Hardware modified bit (set on successful write translation).
    pub modified: bool,
}

/// Counters exposed for tests and reporting.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MmuStats {
    /// Successful translations.
    pub hits: u64,
    /// Faults of either kind.
    pub faults: u64,
    /// Mappings displaced by Rosetta's one-virtual-address-per-frame
    /// restriction.
    pub displaced: u64,
}

/// The translation hardware of one processor.
pub struct Mmu {
    /// Forward map: (asid, vpn) -> mapping.
    map: HashMap<(Asid, Vpn), Mapping>,
    /// Inverted map enforcing the Rosetta restriction:
    /// frame -> the single (asid, vpn) mapped to it on this processor.
    by_frame: HashMap<Frame, (Asid, Vpn)>,
    stats: MmuStats,
    /// Invalidation epoch: bumped on every mutation of the translation
    /// table (enter, remove, protect, reference/modified-bit clearing).
    /// Software caches of translations — the simulator's per-thread TLB
    /// — record the epoch they were filled at and treat any bump as a
    /// wholesale invalidation, so an unmap, protection change or
    /// shootdown on this processor can never be served from a stale
    /// cached translation.
    epoch: u64,
}

impl Mmu {
    /// An MMU with no translations.
    pub fn new() -> Mmu {
        Mmu {
            map: HashMap::new(),
            by_frame: HashMap::new(),
            stats: MmuStats::default(),
            epoch: 0,
        }
    }

    /// The current invalidation epoch. A cached translation is valid
    /// only while the epoch it was captured at is still current.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Translates `(asid, vpn)` for an access of kind `kind`, updating
    /// referenced/modified bits on success.
    #[inline]
    pub fn translate(&mut self, asid: Asid, vpn: Vpn, kind: Access) -> Result<Frame, MmuFault> {
        match self.map.get_mut(&(asid, vpn)) {
            None => {
                self.stats.faults += 1;
                Err(MmuFault::NotMapped)
            }
            Some(m) => {
                let ok = match kind {
                    Access::Fetch => m.prot.allows_read(),
                    Access::Store => m.prot.allows_write(),
                };
                if ok {
                    m.referenced = true;
                    if kind == Access::Store {
                        m.modified = true;
                    }
                    self.stats.hits += 1;
                    Ok(m.frame)
                } else {
                    self.stats.faults += 1;
                    Err(MmuFault::Protection { have: m.prot })
                }
            }
        }
    }

    /// Looks up a mapping without touching referenced/modified bits or
    /// statistics (a kernel/debugger probe, not a hardware translation).
    pub fn probe(&self, asid: Asid, vpn: Vpn) -> Option<Mapping> {
        self.map.get(&(asid, vpn)).copied()
    }

    /// Installs a translation. If the frame is already mapped at a
    /// *different* virtual address on this processor, that older mapping
    /// is displaced first (the Rosetta restriction). Returns the displaced
    /// virtual page, if any.
    pub fn enter(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        frame: Frame,
        prot: Prot,
    ) -> Option<(Asid, Vpn)> {
        debug_assert!(prot != Prot::NONE, "entering a useless mapping");
        self.epoch += 1;
        let mut displaced = None;
        if let Some(&(old_as, old_vpn)) = self.by_frame.get(&frame) {
            if (old_as, old_vpn) != (asid, vpn) {
                self.map.remove(&(old_as, old_vpn));
                self.stats.displaced += 1;
                displaced = Some((old_as, old_vpn));
            }
        }
        // If this vpn previously pointed at another frame, drop the stale
        // inverted entry for that frame.
        if let Some(old) = self.map.get(&(asid, vpn)) {
            if old.frame != frame {
                self.by_frame.remove(&old.frame);
            }
        }
        self.by_frame.insert(frame, (asid, vpn));
        self.map.insert(
            (asid, vpn),
            Mapping { frame, prot, referenced: false, modified: false },
        );
        displaced
    }

    /// Removes the translation for `(asid, vpn)`, returning it.
    pub fn remove(&mut self, asid: Asid, vpn: Vpn) -> Option<Mapping> {
        let m = self.map.remove(&(asid, vpn))?;
        self.by_frame.remove(&m.frame);
        self.epoch += 1;
        Some(m)
    }

    /// Removes whatever translation points at `frame`, returning the
    /// virtual page and the mapping.
    pub fn remove_frame(&mut self, frame: Frame) -> Option<(Asid, Vpn, Mapping)> {
        let (asid, vpn) = self.by_frame.remove(&frame)?;
        let m = self.map.remove(&(asid, vpn))?;
        self.epoch += 1;
        Some((asid, vpn, m))
    }

    /// Tightens (or changes) the protection on an existing mapping.
    /// Returns false if there is no such mapping.
    pub fn protect(&mut self, asid: Asid, vpn: Vpn, prot: Prot) -> bool {
        match self.map.get_mut(&(asid, vpn)) {
            Some(m) => {
                m.prot = prot;
                self.epoch += 1;
                true
            }
            None => false,
        }
    }

    /// Removes every mapping belonging to `asid` (pmap destruction).
    pub fn remove_asid(&mut self, asid: Asid) {
        let victims: Vec<(Asid, Vpn)> =
            self.map.keys().filter(|(a, _)| *a == asid).copied().collect();
        for key in victims {
            if let Some(m) = self.map.remove(&key) {
                self.by_frame.remove(&m.frame);
                self.epoch += 1;
            }
        }
    }

    /// Reads and clears the referenced bit of whatever mapping points at
    /// `frame` on this processor. Returns `None` if the frame is not
    /// mapped here.
    pub fn take_referenced_frame(&mut self, frame: Frame) -> Option<bool> {
        let &(asid, vpn) = self.by_frame.get(&frame)?;
        let m = self.map.get_mut(&(asid, vpn))?;
        // Clearing the referenced bit must invalidate cached
        // translations: a fast path reusing one would otherwise skip the
        // re-translation that sets the bit again.
        self.epoch += 1;
        Some(std::mem::replace(&mut m.referenced, false))
    }

    /// Reads and clears the modified bit of a mapping.
    pub fn take_modified(&mut self, asid: Asid, vpn: Vpn) -> bool {
        match self.map.get_mut(&(asid, vpn)) {
            Some(m) => {
                self.epoch += 1;
                std::mem::replace(&mut m.modified, false)
            }
            None => false,
        }
    }

    /// Iterates over every live translation on this processor (used by
    /// the kernel's consistency audit to cross-check the MMU against the
    /// NUMA directory). Order is unspecified.
    pub fn mappings(&self) -> impl Iterator<Item = ((Asid, Vpn), Mapping)> + '_ {
        self.map.iter().map(|(&k, &m)| (k, m))
    }

    /// Current statistics.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// Number of live translations (all address spaces).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the MMU holds no translations.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Default for Mmu {
    fn default() -> Self {
        Mmu::new()
    }
}

/// Convenience re-export so callers can say `AccessKind::Fetch`.
pub use crate::time::Access as AccessKind;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Frame;
    use crate::types::NodeId;

    const AS: Asid = 1;

    #[test]
    fn translate_unmapped_faults() {
        let mut mmu = Mmu::new();
        assert_eq!(mmu.translate(AS, 5, Access::Fetch), Err(MmuFault::NotMapped));
        assert_eq!(mmu.stats().faults, 1);
    }

    #[test]
    fn enter_then_translate() {
        let mut mmu = Mmu::new();
        let f = Frame::global(3);
        assert_eq!(mmu.enter(AS, 5, f, Prot::READ), None);
        assert_eq!(mmu.translate(AS, 5, Access::Fetch), Ok(f));
        assert_eq!(
            mmu.translate(AS, 5, Access::Store),
            Err(MmuFault::Protection { have: Prot::READ })
        );
        assert_eq!(mmu.stats().hits, 1);
        assert_eq!(mmu.stats().faults, 1);
    }

    #[test]
    fn referenced_and_modified_bits() {
        let mut mmu = Mmu::new();
        let f = Frame::local(NodeId(0), 1);
        mmu.enter(AS, 9, f, Prot::READ_WRITE);
        assert!(!mmu.probe(AS, 9).unwrap().referenced);
        mmu.translate(AS, 9, Access::Fetch).unwrap();
        assert!(mmu.probe(AS, 9).unwrap().referenced);
        assert!(!mmu.probe(AS, 9).unwrap().modified);
        mmu.translate(AS, 9, Access::Store).unwrap();
        assert!(mmu.take_modified(AS, 9));
        assert!(!mmu.take_modified(AS, 9), "take_modified clears the bit");
    }

    #[test]
    fn rosetta_one_vaddr_per_frame() {
        let mut mmu = Mmu::new();
        let f = Frame::global(7);
        mmu.enter(AS, 1, f, Prot::READ);
        // Mapping the same frame at a second virtual address displaces the
        // first mapping.
        let displaced = mmu.enter(AS, 2, f, Prot::READ);
        assert_eq!(displaced, Some((AS, 1)));
        assert_eq!(mmu.translate(AS, 1, Access::Fetch), Err(MmuFault::NotMapped));
        assert_eq!(mmu.translate(AS, 2, Access::Fetch), Ok(f));
        assert_eq!(mmu.stats().displaced, 1);
    }

    #[test]
    fn re_enter_same_vpn_replaces_frame() {
        let mut mmu = Mmu::new();
        let f1 = Frame::global(1);
        let f2 = Frame::local(NodeId(0), 2);
        mmu.enter(AS, 4, f1, Prot::READ);
        assert_eq!(mmu.enter(AS, 4, f2, Prot::READ_WRITE), None);
        assert_eq!(mmu.translate(AS, 4, Access::Store), Ok(f2));
        // The inverted entry for f1 must be gone: mapping f1 elsewhere
        // displaces nothing.
        assert_eq!(mmu.enter(AS, 8, f1, Prot::READ), None);
    }

    #[test]
    fn remove_frame_drops_mapping() {
        let mut mmu = Mmu::new();
        let f = Frame::global(2);
        mmu.enter(AS, 3, f, Prot::READ_WRITE);
        let (asid, vpn, m) = mmu.remove_frame(f).unwrap();
        assert_eq!((asid, vpn), (AS, 3));
        assert_eq!(m.frame, f);
        assert!(mmu.is_empty());
        assert!(mmu.remove_frame(f).is_none());
    }

    #[test]
    fn protect_tightens_permissions() {
        let mut mmu = Mmu::new();
        let f = Frame::global(0);
        mmu.enter(AS, 1, f, Prot::READ_WRITE);
        assert!(mmu.protect(AS, 1, Prot::READ));
        assert_eq!(
            mmu.translate(AS, 1, Access::Store),
            Err(MmuFault::Protection { have: Prot::READ })
        );
        assert!(!mmu.protect(AS, 99, Prot::READ));
    }

    #[test]
    fn remove_asid_clears_only_that_space() {
        let mut mmu = Mmu::new();
        mmu.enter(1, 1, Frame::global(1), Prot::READ);
        mmu.enter(2, 1, Frame::global(2), Prot::READ);
        mmu.remove_asid(1);
        assert!(mmu.probe(1, 1).is_none());
        assert!(mmu.probe(2, 1).is_some());
    }

    #[test]
    fn epoch_bumps_on_every_mutation_and_only_on_mutation() {
        let mut mmu = Mmu::new();
        let e0 = mmu.epoch();
        // Probes and translations (even faulting ones) leave the epoch
        // alone: they never change the table.
        assert!(mmu.probe(AS, 1).is_none());
        assert_eq!(mmu.translate(AS, 1, Access::Fetch), Err(MmuFault::NotMapped));
        assert_eq!(mmu.epoch(), e0);

        let f = Frame::global(1);
        mmu.enter(AS, 1, f, Prot::READ_WRITE);
        let e1 = mmu.epoch();
        assert!(e1 > e0, "enter bumps");
        mmu.translate(AS, 1, Access::Store).unwrap();
        assert_eq!(mmu.epoch(), e1, "successful translate does not bump");

        assert!(mmu.protect(AS, 1, Prot::READ));
        let e2 = mmu.epoch();
        assert!(e2 > e1, "protect on a live mapping bumps");
        assert!(!mmu.protect(AS, 99, Prot::READ));
        assert_eq!(mmu.epoch(), e2, "protect miss does not bump");

        assert_eq!(mmu.take_referenced_frame(f), Some(true));
        let e3 = mmu.epoch();
        assert!(e3 > e2, "clearing the referenced bit bumps");
        assert!(mmu.take_referenced_frame(Frame::global(9)).is_none());
        assert_eq!(mmu.epoch(), e3, "bit clear on an unmapped frame does not bump");

        mmu.take_modified(AS, 1);
        let e4 = mmu.epoch();
        assert!(e4 > e3, "clearing the modified bit bumps");
        assert!(!mmu.take_modified(AS, 99));
        assert_eq!(mmu.epoch(), e4);

        assert!(mmu.remove(AS, 1).is_some());
        let e5 = mmu.epoch();
        assert!(e5 > e4, "remove bumps");
        assert!(mmu.remove(AS, 1).is_none());
        assert_eq!(mmu.epoch(), e5, "remove miss does not bump");

        mmu.enter(AS, 2, f, Prot::READ);
        mmu.enter(2, 3, Frame::global(2), Prot::READ);
        let e6 = mmu.epoch();
        assert!(mmu.remove_frame(f).is_some());
        assert!(mmu.epoch() > e6, "remove_frame bumps");
        let e7 = mmu.epoch();
        mmu.remove_asid(99);
        assert_eq!(mmu.epoch(), e7, "remove_asid of an empty space does not bump");
        mmu.remove_asid(2);
        assert!(mmu.epoch() > e7, "remove_asid bumps per removed mapping");
    }

    #[test]
    fn distinct_asids_can_map_distinct_frames_at_same_vpn() {
        let mut mmu = Mmu::new();
        mmu.enter(1, 5, Frame::global(1), Prot::READ);
        mmu.enter(2, 5, Frame::global(2), Prot::READ);
        assert_eq!(mmu.translate(1, 5, Access::Fetch), Ok(Frame::global(1)));
        assert_eq!(mmu.translate(2, 5, Access::Fetch), Ok(Frame::global(2)));
    }
}
