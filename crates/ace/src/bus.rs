//! IPC bus accounting.
//!
//! The ACE's Inter-Processor Communication bus is 32 bits wide and moves
//! 80 MB/s. The default simulation charges fixed per-access costs (the
//! paper's applications were chosen to be "relatively free of lock, bus or
//! memory contention", section 3.1), but the bus tracks the traffic it
//! carries so experiments can report utilization and, optionally, flag
//! runs where the fixed-cost assumption would have been violated.

use crate::time::Ns;

/// A first-come-first-served queueing model of the IPC bus (opt-in).
///
/// The paper's methodology requires applications "relatively free of
/// lock, bus or memory contention" (section 3.1), so the default cost
/// model charges fixed per-access times. This model checks that
/// assumption: the bus serves 32-bit words serially at its nominal
/// 80 MB/s (50 ns per word); an access arriving while the bus is busy
/// queues behind it, and the queueing delay is added to the access cost.
/// Deterministic: accesses are processed in the engine's virtual-time
/// order — which means contention runs must use a zero lookahead window
/// (exact interleaving); batched execution would present accesses out of
/// arrival order and manufacture spurious delays.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusQueue {
    /// Virtual time at which the bus becomes free.
    free_at: Ns,
    /// Total queueing delay imposed so far.
    pub total_delay: Ns,
    /// Accesses that had to queue.
    pub delayed: u64,
}

/// Service time for one 32-bit word at 80 MB/s.
pub const WORD_SERVICE: Ns = Ns(50);

impl BusQueue {
    /// Accounts a bus transaction of `words` starting at local time
    /// `now`; returns the queueing delay the requester must add to its
    /// access cost.
    pub fn acquire(&mut self, now: Ns, words: u64) -> Ns {
        let start = if self.free_at > now { self.free_at } else { now };
        let delay = start - now;
        self.free_at = start + WORD_SERVICE * words;
        if delay > Ns::ZERO {
            self.total_delay += delay;
            self.delayed += 1;
        }
        delay
    }
}

/// Cumulative traffic over the IPC bus.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BusStats {
    /// 32-bit transfers for application references to global memory.
    pub global_word_transfers: u64,
    /// 32-bit transfers for kernel page copies (replication, migration,
    /// sync write-back).
    pub copy_word_transfers: u64,
    /// Remote (processor-to-processor local memory) word transfers, which
    /// cross the bus once in each direction.
    pub remote_word_transfers: u64,
}

impl BusStats {
    /// Total bytes moved over the bus.
    pub fn total_bytes(&self) -> u64 {
        (self.global_word_transfers + self.copy_word_transfers + self.remote_word_transfers) * 4
    }

    /// Mean bus utilization over a run that occupied the machine for
    /// `elapsed` of virtual time, against the nominal 80 MB/s capacity.
    ///
    /// Returns a fraction; values approaching 1.0 mean the fixed-cost
    /// timing model understates contention.
    pub fn utilization(&self, elapsed: Ns) -> f64 {
        if elapsed == Ns::ZERO {
            return 0.0;
        }
        let bytes_per_sec = self.total_bytes() as f64 / elapsed.as_secs_f64();
        bytes_per_sec / 80e6
    }

    /// Records application global-memory references.
    #[inline]
    pub fn add_global(&mut self, words: u64) {
        self.global_word_transfers += words;
    }

    /// Records kernel page-copy traffic.
    #[inline]
    pub fn add_copy(&mut self, words: u64) {
        self.copy_word_transfers += words;
    }

    /// Records remote-reference traffic.
    #[inline]
    pub fn add_remote(&mut self, words: u64) {
        self.remote_word_transfers += words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_queue_imposes_fcfs_delays() {
        let mut q = BusQueue::default();
        // First access at t=0 for 4 words: no delay, bus busy 200ns.
        assert_eq!(q.acquire(Ns(0), 4), Ns::ZERO);
        // Second access at t=100 queues 100ns behind the first.
        assert_eq!(q.acquire(Ns(100), 1), Ns(100));
        // Third at t=1000: bus long free, no delay.
        assert_eq!(q.acquire(Ns(1000), 1), Ns::ZERO);
        assert_eq!(q.total_delay, Ns(100));
        assert_eq!(q.delayed, 1);
    }

    #[test]
    fn saturating_offered_load_grows_delay() {
        let mut q = BusQueue::default();
        // Offered load 2x capacity: every 25ns a 1-word (50ns) access.
        let mut total = Ns::ZERO;
        for i in 0..100u64 {
            total += q.acquire(Ns(i * 25), 1);
        }
        // Queueing delay grows roughly linearly to ~capacity shortfall.
        assert!(total > Ns(100 * 25 / 2), "delay = {total}");
    }

    #[test]
    fn traffic_accumulates() {
        let mut b = BusStats::default();
        b.add_global(10);
        b.add_copy(512);
        b.add_remote(2);
        assert_eq!(b.total_bytes(), (10 + 512 + 2) * 4);
    }

    #[test]
    fn utilization_against_capacity() {
        let mut b = BusStats::default();
        // 80 MB in one second is utilization 1.0.
        b.add_global(20_000_000);
        let u = b.utilization(Ns(1_000_000_000));
        assert!((u - 1.0).abs() < 1e-9, "u = {u}");
        assert_eq!(BusStats::default().utilization(Ns::ZERO), 0.0);
    }
}
