//! Umbrella crate for the SOSP '89 NUMA memory management reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests (and downstream users who want everything) can
//! depend on a single package:
//!
//! * [`machine`] — the simulated IBM ACE multiprocessor;
//! * [`vm`] — the Mach-style machine-independent virtual memory;
//! * [`numa`] — the paper's contribution: NUMA manager, policies, pmap;
//! * [`sim`] — the deterministic execution engine;
//! * [`threads`] — C-Threads-style locks, barriers, work piles, arenas;
//! * [`apps`] — the eight evaluation applications;
//! * [`trace`] — reference tracing and offline analysis;
//! * [`metrics`] — the analytic model and table rendering.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ace_machine as machine;
pub use ace_sim as sim;
pub use cthreads as threads;
pub use mach_vm as vm;
pub use numa_apps as apps;
pub use numa_core as numa;
pub use numa_metrics as metrics;
pub use numa_trace as trace;
