//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators, assertion macros and the
//! `proptest!` test harness that this workspace's property tests use.
//! Cases are generated from a deterministic per-test seed, so failures
//! reproduce across runs. The significant cut from real proptest is
//! **no shrinking**: a failing case is reported at full size rather
//! than minimized. Persistence files, regressions and custom runners
//! are likewise out of scope.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!` to mix
        /// heterogeneous strategy types producing one value type).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.gen_value(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between equally weighted boxed strategies (what
    /// `prop_oneof!` builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// The strategy [`any`] returns for this type.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            BoxedStrategy(Rc::new(|rng: &mut TestRng| rng.next_u64() & 1 == 1))
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    BoxedStrategy(Rc::new(|rng: &mut TestRng| rng.next_u64() as $t))
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Number-of-elements specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// The deterministic generator handed to strategies (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator starting from `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// The next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-test configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why one generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; not a failure.
        Reject(String),
        /// The property was falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "property falsified: {m}"),
            }
        }
    }

    /// Drives one property over many generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// A runner for the property named `name` (the name fixes the
        /// seed, so every run generates the same cases).
        pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
            // FNV-1a over the name: stable across runs and platforms.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner { config, seed }
        }

        /// Runs `case` once per configured case; panics on the first
        /// falsified case (no shrinking — the case is reported at the
        /// size it was generated).
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut rng = TestRng::new(self.seed);
            let mut rejected = 0u32;
            for i in 0..self.config.cases {
                match case(&mut rng) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => rejected += 1,
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property falsified at case {}/{} (seed {:#x}): {}",
                            i + 1,
                            self.config.cases,
                            self.seed,
                            msg
                        );
                    }
                }
            }
            if rejected == self.config.cases {
                panic!("every generated case was rejected by prop_assume!");
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

/// Uniform choice between strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body once per generated
/// case, with the named arguments drawn from their strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            runner.run(|__rng| {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strategy), __rng);)+
                let mut __case = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_item! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u32..10, pair in (0u64..5, 0.0f64..1.0)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn oneof_and_map(v in collection::vec(
            prop_oneof![
                (0u32..4).prop_map(|n| n * 2),
                (0u32..4).prop_map(|n| n * 2 + 1),
            ],
            1..20,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for n in v {
                prop_assert!(n < 8);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        #[should_panic(expected = "property falsified")]
        fn falsified_property_panics(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn same_name_generates_same_cases() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(32), "stable");
            runner.run(|rng| {
                out.push((0u32..1000).gen_value(rng));
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }

}
