//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module's bounded/unbounded channels are provided
//! (the subset this workspace uses), implemented over `std::sync::mpsc`.
//! The one interface difference from std that matters is papered over:
//! crossbeam uses a single `Sender` type for bounded and unbounded
//! channels, where std splits them into `Sender`/`SyncSender`.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a channel. Cloneable; blocking `send` on a full
    /// bounded channel, never blocking on an unbounded one.
    pub struct Sender<T>(Inner<T>);

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        /// Errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(s) => s.send(value),
                Inner::Bounded(s) => s.send(value),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
            })
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; errors if every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop((tx, tx2));
            assert!(rx.recv().is_err());
        }

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded(1);
            tx.send(7).unwrap();
            let t = std::thread::spawn(move || tx.send(8).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv().unwrap(), 8);
            t.join().unwrap();
        }
    }
}
