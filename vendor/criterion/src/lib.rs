//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/builder surface this workspace's benches use.
//! There is no statistical analysis: each benchmark closure runs a
//! small fixed number of iterations and one mean wall-clock time is
//! printed. That keeps `cargo bench` working (and fast) without any
//! network dependency; treat the numbers as smoke-test indications,
//! not measurements.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// How per-iteration setup output is batched. Ignored here: every
/// iteration runs its own setup, outside the timed section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values, many per batch upstream.
    SmallInput,
    /// Large setup values, one per batch upstream.
    LargeInput,
    /// One setup value per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stub always runs exactly
    /// `sample_size` iterations regardless of how long they take.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; there is no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO, timed: 0 };
        f(&mut b);
        let mean = if b.timed > 0 { b.elapsed / b.timed as u32 } else { Duration::ZERO };
        println!("bench {name:<50} {mean:>12.3?}/iter ({} iters)", b.timed);
        self
    }
}

/// Passed to each benchmark closure; drives the iteration loop.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
    timed: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.timed += 1;
        }
    }

    /// Times `routine` with a fresh untimed `setup` value per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.timed += 1;
        }
    }
}

/// Declares a group of benchmark functions; supports both the plain
/// and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_configured_iterations() {
        let mut c = Criterion::default().sample_size(4);
        let runs = std::cell::Cell::new(0);
        c.bench_function("stub/self_test", |b| {
            b.iter(|| runs.set(runs.get() + 1));
        });
        assert_eq!(runs.get(), 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().sample_size(3);
        let setups = std::cell::Cell::new(0);
        let routines = std::cell::Cell::new(0);
        c.bench_function("stub/batched", |b| {
            b.iter_batched(
                || setups.set(setups.get() + 1),
                |_| routines.set(routines.get() + 1),
                BatchSize::SmallInput,
            );
        });
        assert_eq!((setups.get(), routines.get()), (3, 3));
    }
}
