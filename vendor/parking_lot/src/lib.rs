//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace vendors the subset of parking_lot's API it actually
//! uses (see `vendor/README.md`), implemented over `std::sync`. The
//! semantic difference that matters is preserved: locks are not
//! poisoned — a panic while holding the lock leaves it usable, which
//! the simulation engine relies on when a simulated thread panics.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutual-exclusion lock with parking_lot's interface: `lock()`
/// returns the guard directly and panics in the holder do not poison.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a previous panic while locked is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with parking_lot's unpoisoned interface.
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning");
    }
}
