//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides seeded deterministic generation with the method names this
//! workspace uses: `StdRng::seed_from_u64` and `Rng::random_range`.
//! The generator is SplitMix64 — statistically fine for scene/workload
//! generation, not cryptographic.

use std::ops::Range;

/// Types that can produce uniformly distributed raw bits.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`], as in the real crate).
pub trait Rng: RngCore {
    /// A uniformly random value in `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform draw in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, matching `rand::SeedableRng`'s convenience
/// constructor.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Half-open ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// The standard seeded generator (SplitMix64 underneath).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = r.random_range(3u32..9);
            assert!((3..9).contains(&i));
        }
    }
}
