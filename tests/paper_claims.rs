//! In-text numeric claims of the paper, checked against the simulation.

use numa_repro::apps::{App, DivisorDiscipline, Fft, IMatMult, Primes2, Scale};
use numa_repro::machine::Prot;
use numa_repro::numa::{MoveLimitPolicy, StateKind};
use numa_repro::sim::{SimConfig, Simulator};
use numa_repro::trace::{PageClass, Recorder, SharingReport};

/// "Baylor and Rathi analyzed reference traces from an EPEX fft program
/// and found that about 95% of its data references were to private
/// memory" (section 3.2). Our EPEX-style FFT's trace must show the same
/// strong private majority.
#[test]
fn fft_references_are_mostly_private() {
    let app = Fft::new(Scale::Test);
    let mut sim = Simulator::new(SimConfig::ace(4), Box::new(MoveLimitPolicy::default()));
    let rec = Recorder::install(&sim);
    app.run(&mut sim, 4).expect("fft verifies");
    let trace = rec.take(&sim);
    let sharing = SharingReport::from_trace(&trace);
    // Local fraction (ground truth for "references to private memory"
    // once the policy has placed private pages locally).
    assert!(
        sharing.alpha() > 0.9,
        "EPEX fft local fraction = {}, Baylor & Rathi report ~95% private",
        sharing.alpha()
    );
}

/// "The high alpha reflects the 400 local fetches per global store"
/// (IMatMult, section 3.2): with dimension n, the ratio of local
/// fetches to global stores is about 2n.
#[test]
fn imatmult_fetch_to_store_ratio() {
    let n = 32usize;
    let app = IMatMult::with_dim(n).expect("valid dimension");
    let mut sim = Simulator::new(SimConfig::ace(4), Box::new(MoveLimitPolicy::default()));
    app.run(&mut sim, 4).expect("product verifies");
    let r = sim.report();
    // Each output element: 2n input fetches (local once replicated) and
    // one output store (global once pinned).
    let ratio = r.refs.local as f64 / r.refs.global.max(1) as f64;
    assert!(
        ratio > n as f64 && ratio < 4.0 * n as f64,
        "local:global = {ratio:.0}, expected about 2n = {}",
        2 * n
    );
}

/// "The page then remains in global memory until it is freed" (section
/// 2.3.2): freeing and reallocating through the engine-level API resets
/// a pinned page's placement history.
#[test]
fn pinned_page_is_cacheable_again_after_dealloc() {
    let mut sim =
        Simulator::new(SimConfig::small(2), Box::new(MoveLimitPolicy::new(0)), );
    let a = sim.alloc(64, Prot::READ_WRITE);
    // Ping-pong writes pin the page.
    for round in 0..3u64 {
        let addr = a;
        sim.spawn(format!("w{round}"), move |ctx| {
            ctx.write_u32(addr, round as u32);
        });
        sim.run();
    }
    let lp = sim.with_kernel(|k| k.vm.resident_lpage(k.task, a).unwrap());
    assert_eq!(
        sim.with_kernel(|k| k.pmap.view(lp).state),
        StateKind::GlobalWritable
    );
    sim.dealloc(a);
    // Reallocate (the pool reuses the freed slot) and write once: the
    // page must cache locally again.
    let b = sim.alloc(64, Prot::READ_WRITE);
    sim.spawn("fresh", move |ctx| ctx.write_u32(b, 9));
    sim.run();
    let lp2 = sim.with_kernel(|k| k.vm.resident_lpage(k.task, b).unwrap());
    assert!(matches!(
        sim.with_kernel(|k| k.pmap.view(lp2).state),
        StateKind::LocalWritable(_)
    ));
    assert_eq!(sim.with_kernel(|k| k.peek_u32(b)), 9);
}

/// "Writably-shared pages are moved between local memories as the NUMA
/// manager keeps the local caches consistent" and only then pinned: the
/// naive primes2's hot vector pages must show multiple moves before
/// pinning, and the sieve-verified result is unaffected.
#[test]
fn write_shared_pages_move_then_pin() {
    let app = Primes2::new(Scale::Test, DivisorDiscipline::SharedVector);
    let mut sim = Simulator::new(SimConfig::small(4), Box::new(MoveLimitPolicy::default()));
    let rec = Recorder::install(&sim);
    app.run(&mut sim, 4).expect("primes verify");
    let r = sim.report();
    assert!(r.numa.migrations >= 5, "moves before pinning: {}", r.numa.migrations);
    assert!(r.numa.pins >= 1, "hot pages must pin");
    let trace = rec.take(&sim);
    let sharing = SharingReport::from_trace(&trace);
    assert!(sharing.count(PageClass::WriteShared) >= 1);
}
