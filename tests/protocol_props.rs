//! Property-based state-machine test for the coherence protocol.
//!
//! Drives `NumaManager::request` directly (no engine, no threads — the
//! manager itself serializes every transition, so this *is* the flat
//! sequentially-consistent setting the protocol promises) with long
//! seeded streams of random reads, writes, migrations, and pins across
//! processors and pages, and checks three properties after every step:
//!
//! 1. **Sequential consistency** — a flat oracle holds the byte
//!    contents each page must have; every granted frame must agree with
//!    it before the access and after it.
//! 2. **Legal states** (Tables 1 and 2 of the paper) — the directory
//!    state the manager lands in must equal the `new_state` of the
//!    [`numa_core::plan`] cell selected by (access, decision, prior
//!    state), whenever the decision was executed as made (memory
//!    pressure and hardware faults may legitimately degrade LOCAL to
//!    GLOBAL; those steps skip the table check but not the others).
//! 3. **Structural invariants** — `NumaManager::check_invariants`
//!    (replica freshness, exactly-one-copy for local-writable, no local
//!    copies for global-writable, ...) must hold for every page.
//!
//! The generator is a hand-rolled SplitMix64 so failures reproduce from
//! the printed seed alone.

use numa_repro::machine::{Access, CpuId, FaultConfig, Machine, NodeId, TopologyBuilder};
use numa_repro::numa::{
    plan, CachePolicy, FlushLimitPolicy, MoveLimitPolicy, NumaManager, PinReason, Placement,
    StateKind, TableState,
};
use numa_repro::vm::LPageId;
use std::collections::HashMap;

const PAGES: u32 = 6;
const CPUS: u16 = 4;
const OPS: usize = 300;

/// SplitMix64: tiny, seedable, and good enough to shuffle op streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Wraps any policy and records the decision it just made, so the test
/// can look up the Table 1/2 cell the manager was asked to execute.
struct Recording<P: CachePolicy> {
    inner: P,
    last: Option<Placement>,
}

impl<P: CachePolicy> Recording<P> {
    fn new(inner: P) -> Recording<P> {
        Recording { inner, last: None }
    }
}

impl<P: CachePolicy> CachePolicy for Recording<P> {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn decide(&mut self, lpage: LPageId, access: Access, cpu: CpuId) -> Placement {
        let d = self.inner.decide(lpage, access, cpu);
        self.last = Some(d);
        d
    }

    fn on_move(&mut self, lpage: LPageId) {
        self.inner.on_move(lpage);
    }

    fn on_invalidation(&mut self, lpage: LPageId, copies: u32, writer: NodeId) {
        self.inner.on_invalidation(lpage, copies, writer);
    }

    fn on_free(&mut self, lpage: LPageId) {
        self.inner.on_free(lpage);
    }

    fn on_tick(&mut self) {
        self.inner.on_tick();
    }

    fn take_reconsiderations(&mut self) -> Vec<LPageId> {
        self.inner.take_reconsiderations()
    }

    fn pin_reason(&self, lpage: LPageId) -> Option<PinReason> {
        self.inner.pin_reason(lpage)
    }
}

/// A policy that flips a seeded coin between LOCAL and GLOBAL, which
/// wanders the protocol through every cell of Tables 1 and 2.
struct CoinPolicy(Rng);

impl CachePolicy for CoinPolicy {
    fn name(&self) -> &'static str {
        "coin"
    }

    fn decide(&mut self, _lpage: LPageId, _access: Access, _cpu: CpuId) -> Placement {
        if self.0.below(2) == 0 {
            Placement::Local
        } else {
            Placement::Global
        }
    }
}

/// Maps the directory state to the Table 1/2 row seen by a processor
/// whose local memory is `home`, or `None` where the tables don't apply
/// (first touch of a fresh page; the remote-reference extension
/// bypasses the tables entirely).
fn table_row(state: StateKind, home: NodeId) -> Option<TableState> {
    match state {
        StateKind::Fresh => None,
        StateKind::ReadOnly => Some(TableState::ReadOnly),
        StateKind::GlobalWritable => Some(TableState::GlobalWritable),
        StateKind::LocalWritable(owner) if owner == home => Some(TableState::LocalWritableOwn),
        StateKind::LocalWritable(_) => Some(TableState::LocalWritableOther),
        StateKind::RemoteShared(_) => None,
    }
}

/// Maps a Table 1/2 `new_state` back to the directory state it implies
/// for a requesting processor homed on `home`.
fn expected_state(new_state: TableState, home: NodeId) -> StateKind {
    match new_state {
        TableState::ReadOnly => StateKind::ReadOnly,
        TableState::GlobalWritable => StateKind::GlobalWritable,
        TableState::LocalWritableOwn => StateKind::LocalWritable(home),
        other => panic!("plan() produced impossible new_state {other:?}"),
    }
}

/// Runs one seeded op stream against the given policy and checks the
/// three properties after every step. Returns the manager for extra,
/// policy-specific assertions.
fn run_stream<P: CachePolicy>(
    seed: u64,
    faults: FaultConfig,
    policy: Recording<P>,
) -> (Machine, NumaManager, Recording<P>) {
    run_stream_with_frames(seed, faults, policy, None)
}

/// [`run_stream`] on a machine whose per-processor local memory is
/// shrunk to `local_frames` frames, so synchronous reclaim and
/// degrade-to-global fire constantly under the same three properties.
fn run_stream_with_frames<P: CachePolicy>(
    seed: u64,
    faults: FaultConfig,
    mut policy: Recording<P>,
    local_frames: Option<usize>,
) -> (Machine, NumaManager, Recording<P>) {
    let mut cfg = TopologyBuilder::small(CPUS as usize).config();
    cfg.faults = faults;
    if let Some(frames) = local_frames {
        cfg.topology.set_uniform_local_frames(frames);
    }
    let psize = cfg.page_size.bytes();
    let mut m = Machine::new(cfg);
    let mut mgr = NumaManager::new();

    // Flat sequentially-consistent oracle: the byte contents every page
    // must expose, updated on each granted store.
    let mut oracle: HashMap<u32, Vec<u8>> = HashMap::new();
    for p in 0..PAGES {
        mgr.zero_page(LPageId(p));
        oracle.insert(p, vec![0u8; psize]);
    }

    let mut rng = Rng(seed);
    let mut buf = vec![0u8; psize];
    for step in 0..OPS {
        let page = LPageId(rng.below(u64::from(PAGES)) as u32);
        let cpu = CpuId(rng.below(u64::from(CPUS)) as u16);
        let access = if rng.below(2) == 0 { Access::Fetch } else { Access::Store };
        let tag = format!("seed {seed:#x} step {step}: {access:?} page {page:?} on {cpu:?}");

        let prior = mgr.view(page).state;
        let stats0 = mgr.stats();
        let g = mgr
            .request(&mut m, page, access, cpu, &mut policy)
            .unwrap_or_else(|e| panic!("{tag}: request failed: {e:?}"));
        let decision = policy.last.take().expect("policy was consulted");

        // Property 1a: the granted frame holds exactly what the oracle
        // says the page holds — migrations and replications lose
        // nothing, and stale replicas are never handed out.
        let want = &oracle[&page.0];
        m.mem.read_bytes(g.frame, 0, &mut buf);
        assert_eq!(&buf, want, "{tag}: granted frame disagrees with the oracle");

        // Property 1b: the grant's protection ceiling admits the access.
        match access {
            Access::Fetch => assert!(g.prot_ceiling.allows_read(), "{tag}: unreadable grant"),
            Access::Store => assert!(g.prot_ceiling.allows_write(), "{tag}: unwritable grant"),
        }
        if access == Access::Store {
            let off = rng.below((psize / 4) as u64) as usize * 4;
            let val = rng.next() as u32;
            m.mem.write_u32(g.frame, off, val);
            oracle.get_mut(&page.0).unwrap()[off..off + 4].copy_from_slice(&val.to_le_bytes());
        }

        // Property 2: the state the manager landed in is the new_state
        // of the Table 1/2 cell for (access, decision, prior state) —
        // unless pressure or a hardware fault legitimately degraded the
        // decision mid-flight, which the fallback counters reveal.
        let stats1 = mgr.stats();
        let degraded = stats1.local_pressure_fallbacks != stats0.local_pressure_fallbacks
            || stats1.fault_global_fallbacks != stats0.fault_global_fallbacks;
        if let Some(row) = table_row(prior, m.home_of(cpu)) {
            if !degraded {
                let cell = plan(access, decision, row);
                assert_eq!(
                    mgr.view(page).state,
                    expected_state(cell.new_state, m.home_of(cpu)),
                    "{tag}: landed outside the Table 1/2 cell (prior {row:?}, {decision:?})"
                );
            }
        }

        // Property 3: structural invariants for every page, every step.
        for p in 0..PAGES {
            mgr.check_invariants(&mut m, LPageId(p))
                .unwrap_or_else(|e| panic!("{tag}: invariant broken on page {p}: {e}"));
        }
    }

    // Final read-back through the authoritative path must match the
    // oracle for every page.
    for p in 0..PAGES {
        let mut got = vec![0u8; psize];
        mgr.read_page(&mut m, LPageId(p), &mut got, CpuId(0));
        assert_eq!(&got, &oracle[&p], "seed {seed:#x}: final contents of page {p} diverged");
    }
    (m, mgr, policy)
}

#[test]
fn random_ops_stay_coherent_and_inside_the_tables() {
    for seed in [0x0ACE_5EED, 1, 2, 3] {
        let coin = CoinPolicy(Rng(seed ^ 0xC01D_C0FF_EE00_0000));
        let (_, mgr, _) = run_stream(seed, FaultConfig::disabled(), Recording::new(coin));
        let s = mgr.stats();
        assert_eq!(s.requests, OPS as u64, "every op goes through the manager");
        // The coin policy must actually have wandered the tables:
        // replications (read sharing), migrations (write stealing), and
        // global placements all occur in 300 mixed ops.
        assert!(s.replications > 0, "stream never replicated: {s:?}");
        assert!(s.migrations > 0, "stream never migrated: {s:?}");
        assert!(s.to_global > 0, "stream never went global: {s:?}");
        assert_eq!(s.local_pressure_fallbacks, 0, "small(4) has frames to spare");
    }
}

#[test]
fn random_ops_stay_coherent_under_memory_pressure() {
    // The same three properties on machines with only 2-4 local frames
    // per processor: every LOCAL placement contends for frames, so
    // synchronous reclaim (and, once the per-request budget runs out,
    // degrade-to-global) fires constantly. Neither may ever surface
    // stale bytes, land outside the tables, or break an invariant.
    let mut total_reclaims = 0u64;
    for (seed, frames) in [(0x0ACE_5EEDu64, 2usize), (1, 2), (2, 3), (3, 4)] {
        let coin = CoinPolicy(Rng(seed ^ 0x5C4A_7C17_0000_0000));
        let (_, mgr, _) = run_stream_with_frames(
            seed,
            FaultConfig::disabled(),
            Recording::new(coin),
            Some(frames),
        );
        let s = mgr.stats();
        if frames == 2 {
            assert!(
                s.reclaims > 0,
                "2 local frames for {PAGES} pages must force reclaim: {s:?}"
            );
        }
        assert_eq!(
            s.local_pressure_fallbacks, s.degradations,
            "every pressure fallback is a typed degradation: {s:?}"
        );
        total_reclaims += s.reclaims;
    }
    assert!(total_reclaims > 0, "the pressure matrix never exercised reclaim");
}

#[test]
fn reclaimed_then_refetched_pages_are_byte_identical() {
    // Deterministic single-frame squeeze: with one local frame per
    // processor, every new LOCAL placement must evict the previous
    // tenant. A dirty victim is synced to global on the way out, so
    // refetching it later returns exactly the written bytes.
    use numa_repro::numa::AllLocalPolicy;
    let cfg = TopologyBuilder::small(2).local_frames(1).config();
    let psize = cfg.page_size.bytes();
    let mut m = Machine::new(cfg);
    let mut mgr = NumaManager::new();
    let mut pol = AllLocalPolicy;
    const A: LPageId = LPageId(0);
    const B: LPageId = LPageId(1);
    mgr.zero_page(A);
    mgr.zero_page(B);
    let cpu = CpuId(0);

    // Dirty page A in cpu0's only local frame.
    let g = mgr.request(&mut m, A, Access::Store, cpu, &mut pol).unwrap();
    let pattern: Vec<u8> = (0..psize).map(|i| (i * 7 + 13) as u8).collect();
    m.mem.write_bytes(g.frame, 0, &pattern);
    mgr.check_invariants(&mut m, A).unwrap();

    // Touching B forces A out: the writable victim must sync to global.
    let syncs_before = mgr.stats().syncs;
    mgr.request(&mut m, B, Access::Fetch, cpu, &mut pol).unwrap();
    assert!(mgr.stats().reclaims > 0, "B's placement must evict A");
    assert!(mgr.stats().syncs > syncs_before, "dirty victim must be synced, not dropped");
    mgr.check_invariants(&mut m, A).unwrap();
    mgr.check_invariants(&mut m, B).unwrap();

    // Refetching A (evicting B in turn) returns the exact bytes.
    let g = mgr.request(&mut m, A, Access::Fetch, cpu, &mut pol).unwrap();
    let mut got = vec![0u8; psize];
    m.mem.read_bytes(g.frame, 0, &mut got);
    assert_eq!(got, pattern, "reclaimed-then-refetched page lost data");
    assert!(mgr.stats().reclaims >= 2);
    mgr.check_invariants(&mut m, A).unwrap();
    mgr.check_invariants(&mut m, B).unwrap();
}

#[test]
fn random_ops_stay_coherent_under_fault_injection() {
    // Same properties with the fault clock running: recovery (retries,
    // refetches, quarantines, degradations) may reroute placements but
    // can never surface stale or corrupt data, leave an illegal state,
    // or break an invariant.
    for seed in [0x0ACE_5EED, 7] {
        let faults = FaultConfig {
            seed,
            bus_timeout_rate: 0.05,
            bad_frame_rate: 0.05,
            corruption_rate: 0.05,
            ..FaultConfig::disabled()
        };
        let coin = CoinPolicy(Rng(seed ^ 0xFA17_0000_0000_0000));
        let (_, mgr, _) = run_stream(seed, faults, Recording::new(coin));
        let s = mgr.stats();
        assert!(
            s.bus_retries + s.corruptions_detected + s.frame_quarantines > 0,
            "fault rates of 5% must actually fire in 300 ops: {s:?}"
        );
    }
}

/// Hard component loss inside the property harness: at a scheduled step
/// mid-stream, one node's memory goes offline and the manager runs its
/// recovery protocol. The same three properties must hold on every step
/// *after* recovery — with two typed amendments:
///
/// * pages the recovery classified as lost (`PageLost`) restart as
///   zero-filled Fresh pages, so the oracle resets them to zeros;
/// * LOCAL placements aimed at the dead node legitimately degrade to
///   GLOBAL (`dead_node_fallbacks`), which skips the table cell check
///   exactly like pressure degradations do.
///
/// Returns everything observable so the determinism test can compare
/// two whole runs byte for byte.
fn run_chaos_stream(
    seed: u64,
    offline_step: usize,
    dead: NodeId,
) -> (numa_repro::numa::NumaStats, Vec<Vec<u8>>, Vec<numa_repro::numa::FaultEvent>) {
    use numa_repro::numa::FaultEvent;
    let cfg = TopologyBuilder::small(CPUS as usize).config();
    let psize = cfg.page_size.bytes();
    let mut m = Machine::new(cfg);
    let mut mgr = NumaManager::new();
    let mut policy = Recording::new(CoinPolicy(Rng(seed ^ 0xDEAD_0000_0000_0000)));

    let mut oracle: HashMap<u32, Vec<u8>> = HashMap::new();
    for p in 0..PAGES {
        mgr.zero_page(LPageId(p));
        oracle.insert(p, vec![0u8; psize]);
    }

    let mut rng = Rng(seed);
    let mut buf = vec![0u8; psize];
    for step in 0..OPS {
        if step == offline_step {
            let events_before = mgr.fault_events().len();
            mgr.node_offline(&mut m, dead);
            // Typed losses restart as zero-filled Fresh pages: the
            // sequentially-consistent oracle adopts exactly that truth.
            let lost: Vec<LPageId> = mgr.fault_events()[events_before..]
                .iter()
                .filter_map(|e| match e {
                    FaultEvent::PageLost { lpage, .. } => Some(*lpage),
                    _ => None,
                })
                .collect();
            for lp in lost {
                oracle.insert(lp.0, vec![0u8; psize]);
            }
            // Recovery leaves every page structurally legal before any
            // further request runs.
            for p in 0..PAGES {
                mgr.check_invariants(&mut m, LPageId(p)).unwrap_or_else(|e| {
                    panic!("seed {seed:#x}: invariant broken right after recovery on page {p}: {e}")
                });
            }
        }

        let page = LPageId(rng.below(u64::from(PAGES)) as u32);
        let cpu = CpuId(rng.below(u64::from(CPUS)) as u16);
        let access = if rng.below(2) == 0 { Access::Fetch } else { Access::Store };
        let tag = format!("seed {seed:#x} step {step}: {access:?} page {page:?} on {cpu:?}");

        let prior = mgr.view(page).state;
        let stats0 = mgr.stats();
        let g = mgr
            .request(&mut m, page, access, cpu, &mut policy)
            .unwrap_or_else(|e| panic!("{tag}: request failed after recovery: {e:?}"));
        let decision = policy.last.take().expect("policy was consulted");

        let want = &oracle[&page.0];
        m.mem.read_bytes(g.frame, 0, &mut buf);
        assert_eq!(&buf, want, "{tag}: granted frame disagrees with the oracle");
        if access == Access::Store {
            let off = rng.below((psize / 4) as u64) as usize * 4;
            let val = rng.next() as u32;
            m.mem.write_u32(g.frame, off, val);
            oracle.get_mut(&page.0).unwrap()[off..off + 4].copy_from_slice(&val.to_le_bytes());
        }

        let stats1 = mgr.stats();
        let degraded = stats1.local_pressure_fallbacks != stats0.local_pressure_fallbacks
            || stats1.fault_global_fallbacks != stats0.fault_global_fallbacks
            || stats1.dead_node_fallbacks != stats0.dead_node_fallbacks;
        if let Some(row) = table_row(prior, m.home_of(cpu)) {
            if !degraded {
                let cell = plan(access, decision, row);
                assert_eq!(
                    mgr.view(page).state,
                    expected_state(cell.new_state, m.home_of(cpu)),
                    "{tag}: landed outside the Table 1/2 cell (prior {row:?}, {decision:?})"
                );
            }
        }
        for p in 0..PAGES {
            mgr.check_invariants(&mut m, LPageId(p))
                .unwrap_or_else(|e| panic!("{tag}: invariant broken on page {p}: {e}"));
        }
    }

    let mut finals = Vec::new();
    for p in 0..PAGES {
        let mut got = vec![0u8; psize];
        mgr.read_page(&mut m, LPageId(p), &mut got, CpuId(0));
        assert_eq!(&got, &oracle[&p], "seed {seed:#x}: final contents of page {p} diverged");
        finals.push(got);
    }
    (mgr.stats(), finals, mgr.fault_events().to_vec())
}

#[test]
fn post_recovery_state_satisfies_the_tables_and_the_oracle() {
    let mut total_recovered = 0u64;
    for seed in [0x0ACE_5EED, 11, 12] {
        let (stats, _, events) = run_chaos_stream(seed, OPS / 3, NodeId(1));
        assert_eq!(stats.nodes_offlined, 1, "seed {seed:#x}: the node must die once");
        total_recovered += stats.pages_rehomed + stats.pages_lost;
        assert!(
            stats.dead_node_fallbacks > 0,
            "seed {seed:#x}: the coin policy keeps aiming LOCAL at the dead node: {stats:?}"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                numa_repro::numa::FaultEvent::NodeOffline { node: NodeId(1), .. }
            )),
            "seed {seed:#x}: the loss must be a typed fault event"
        );
    }
    // Whether a given step leaves copies on the dying node is
    // seed-dependent; across the matrix at least one run must exercise
    // the rehome/lost classifier for the test to mean anything.
    assert!(
        total_recovered > 0,
        "no seed in the matrix left copies on the dying node — recovery never ran"
    );
}

#[test]
fn recovery_runs_byte_identical_across_reruns() {
    for seed in [0x0ACE_5EED, 21] {
        let first = run_chaos_stream(seed, OPS / 2, NodeId(2));
        let second = run_chaos_stream(seed, OPS / 2, NodeId(2));
        assert_eq!(first.0, second.0, "seed {seed:#x}: recovery stats diverged across reruns");
        assert_eq!(first.1, second.1, "seed {seed:#x}: final page bytes diverged across reruns");
        assert_eq!(first.2, second.2, "seed {seed:#x}: fault-event log diverged across reruns");
    }
}

/// Overload shedding as a protocol property. A seeded matrix of
/// protection knobs (bounded queues, deadlines, tenant quotas) drives
/// the serving workload through admission, with and without the fault
/// clock running. Three things must hold for every combination:
///
/// 1. **Shed requests leave the store untouched** — `KvServe::run`
///    verifies the final KV words against a host-side replay of exactly
///    the served puts, so a shed request that mutated any word fails
///    the run outright;
/// 2. **the ledger is exact** — every generated request is accounted
///    admitted or shed with a typed reason, nothing double-counted;
/// 3. **the directory stays Table-legal** — `check_consistency` walks
///    every page's Table 1/2 invariants after the last request, faults
///    or not.
///
/// And the whole composition reproduces byte-for-byte from the seed.
#[test]
fn shed_requests_never_mutate_state_with_and_without_faults() {
    use numa_repro::apps::{App, KvServe, Scale, ServeParams};
    use numa_repro::sim::{SimConfig, Simulator};
    const SERVE_SEED: u64 = 0x0ACE_CAFE;
    let mut rng = Rng(SERVE_SEED);
    for case in 0..6u32 {
        let params = ServeParams {
            requests: 256,
            rate: 4_000 + rng.below(60_000),
            tenants: 1 + rng.below(4) as usize,
            queue_depth: rng.below(3) as usize * 3,
            deadline_ns: [0, 150_000, 400_000][rng.below(3) as usize],
            tenant_quota: [0, 500, 2_000][rng.below(3) as usize],
            ..ServeParams::for_scale(Scale::Test)
        };
        for faults in [false, true] {
            let tag = format!("seed {SERVE_SEED:#x} case {case} faults={faults}");
            let observe = |p: ServeParams| {
                let mut cfg = SimConfig::small(3);
                if faults {
                    cfg = cfg.faults(FaultConfig {
                        seed: 0x0ACE_5EED,
                        bus_timeout_rate: 0.01,
                        bad_frame_rate: 0.01,
                        corruption_rate: 0.01,
                        ..FaultConfig::default()
                    });
                }
                let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
                KvServe::new(p)
                    .run(&mut sim, 3)
                    .unwrap_or_else(|e| panic!("{tag}: a shed request corrupted state: {e}"));
                sim.with_kernel(|k| k.check_consistency())
                    .unwrap_or_else(|e| panic!("{tag}: directory illegal after serving: {e}"));
                sim.report()
            };
            let report = observe(params.clone());
            let s = report.serving.as_ref().expect("serving report attached");
            assert_eq!(
                s.requests,
                s.admitted + s.shed_queue_full + s.shed_deadline + s.shed_quota,
                "{tag}: ledger out of balance: {s:?}"
            );
            assert_eq!(s.admitted, s.gets + s.puts, "{tag}: admitted != served");
            assert_eq!(s.latency.total(), s.admitted, "{tag}: unmeasured admissions");
            let limited =
                params.queue_depth > 0 || params.deadline_ns > 0 || params.tenant_quota > 0;
            assert_eq!(s.limited, limited, "{tag}: limited flag disagrees with the knobs");
            if !limited {
                assert_eq!(s.shed_total(), 0, "{tag}: unprotected runs never shed");
            }
            // Byte-identical reproduction from the same seed and knobs.
            let again = observe(params.clone());
            assert_eq!(
                report.to_json().to_string_flat(),
                again.to_json().to_string_flat(),
                "{tag}: rerun diverged"
            );
        }
    }
}

#[test]
fn random_ops_with_the_paper_policy_pin_hot_pages() {
    // MoveLimitPolicy under the same harness: the protocol properties
    // hold, and pages whose ownership ping-pongs end up pinned global.
    let (_, _, policy) = run_stream(
        0x0ACE_5EED,
        FaultConfig::disabled(),
        Recording::new(MoveLimitPolicy::new(2)),
    );
    assert!(
        policy.inner.pinned_count() > 0,
        "random cross-CPU writes must trip the move limit"
    );
}

#[test]
fn random_ops_with_the_flush_policy_stay_coherent_and_pin() {
    // FlushLimitPolicy under the full property harness: sequential
    // consistency, Table 1/2 legality and the structural invariants
    // hold on every step, and read-write sharing (which never trips
    // the move limit) trips the flush budget instead.
    for seed in [0x0ACE_5EED, 31] {
        let (_, mgr, policy) = run_stream(
            seed,
            FaultConfig::disabled(),
            Recording::new(FlushLimitPolicy::new(2, 0)),
        );
        let s = mgr.stats();
        assert!(
            policy.inner.pinned_pages().count() > 0,
            "seed {seed:#x}: random sharing must trip a flush budget of 2: {s:?}"
        );
        assert!(s.coherence_invalidations > 0, "seed {seed:#x}: no invalidations: {s:?}");
        assert!(s.flush_pins > 0, "seed {seed:#x}: pins must be attributed to flushes: {s:?}");
        assert_eq!(s.pins, 0, "seed {seed:#x}: the move-limit pin path must not fire: {s:?}");
    }
}

#[test]
fn random_ops_with_the_flush_policy_stay_coherent_under_faults() {
    // The same harness with the fault clock running: recovery may
    // reroute placements, but the flush accounting still only counts
    // coherence invalidations and the properties all hold.
    let faults = FaultConfig {
        seed: 0x0ACE_5EED,
        bus_timeout_rate: 0.05,
        bad_frame_rate: 0.05,
        corruption_rate: 0.05,
        ..FaultConfig::disabled()
    };
    let (_, mgr, policy) =
        run_stream(0x0ACE_5EED, faults, Recording::new(FlushLimitPolicy::new(2, 0)));
    let s = mgr.stats();
    assert!(
        policy.inner.pinned_pages().count() > 0,
        "random sharing must trip the flush budget under faults too: {s:?}"
    );
    assert!(s.coherence_invalidations > 0, "no invalidations under faults: {s:?}");
}

/// One reader-writer thrash round: the writer stores, every reader
/// fetches and checks the value. Returns the value written.
fn thrash_round(
    m: &mut Machine,
    mgr: &mut NumaManager,
    pol: &mut FlushLimitPolicy,
    page: LPageId,
    round: u32,
) -> u32 {
    let g = mgr.request(m, page, Access::Store, CpuId(0), pol).unwrap();
    let val = round + 1;
    m.mem.write_u32(g.frame, 0, val);
    for r in 1..CPUS {
        let g = mgr.request(m, page, Access::Fetch, CpuId(r), pol).unwrap();
        assert_eq!(m.mem.read_u32(g.frame, 0), val, "round {round}: reader {r} saw stale data");
    }
    mgr.check_invariants(m, page).unwrap();
    val
}

#[test]
fn flush_limit_converges_the_single_writer_thrash() {
    // The serving-shard pathology, distilled: one writer, three readers,
    // one page. Ownership never changes hands, so the move limit is
    // blind to it — but every round invalidates copies, so the flush
    // budget trips, the page pins global, and from then on the
    // invalidation count is provably frozen: the thrash has converged.
    let mut m = Machine::new(TopologyBuilder::small(CPUS as usize).config());
    let mut mgr = NumaManager::new();
    let mut pol = FlushLimitPolicy::new(3, 0);
    const L: LPageId = LPageId(0);
    mgr.zero_page(L);

    let mut frozen: Option<u64> = None;
    for round in 0..16u32 {
        thrash_round(&mut m, &mut mgr, &mut pol, L, round);
        assert_eq!(mgr.view(L).move_count, 0, "a single-writer stream never migrates");
        let s = mgr.stats();
        if let Some(f) = frozen {
            assert_eq!(
                s.coherence_invalidations, f,
                "round {round}: invalidations past the pin — the thrash did not converge"
            );
            assert_eq!(mgr.view(L).state, StateKind::GlobalWritable, "round {round}");
        } else if pol.is_pinned(L) && mgr.view(L).state == StateKind::GlobalWritable {
            frozen = Some(s.coherence_invalidations);
        }
    }
    assert!(frozen.is_some(), "a flush budget of 3 must trip under reader-writer thrash");
    let s = mgr.stats();
    assert_eq!(s.migrations, 0, "nothing to migrate: {s:?}");
    assert_eq!(s.pins, 0, "the move-limit pin path must stay silent: {s:?}");
    assert_eq!(s.flush_pins, 1, "exactly one page pinned, attributed to flushes: {s:?}");
    assert!(
        pol.invalidations(L) > pol.threshold(),
        "pinning requires the budget to be exceeded, not met"
    );
}

#[test]
fn flush_limit_converges_the_single_writer_thrash_under_faults() {
    // Same pathology with all three fault channels firing: recovery may
    // degrade individual placements along the way, but the flush budget
    // still trips, readers never see stale bytes, and once the page is
    // pinned in global memory the coherence-invalidation count freezes.
    let mut cfg = TopologyBuilder::small(CPUS as usize).config();
    cfg.faults = FaultConfig {
        seed: 0x0ACE_5EED,
        bus_timeout_rate: 0.05,
        bad_frame_rate: 0.05,
        corruption_rate: 0.05,
        ..FaultConfig::disabled()
    };
    let mut m = Machine::new(cfg);
    let mut mgr = NumaManager::new();
    let mut pol = FlushLimitPolicy::new(3, 0);
    const L: LPageId = LPageId(0);
    mgr.zero_page(L);

    let mut frozen: Option<u64> = None;
    for round in 0..24u32 {
        thrash_round(&mut m, &mut mgr, &mut pol, L, round);
        assert_eq!(mgr.view(L).move_count, 0, "a single-writer stream never migrates");
        let s = mgr.stats();
        if let Some(f) = frozen {
            assert_eq!(
                s.coherence_invalidations, f,
                "round {round}: invalidations past the pin under faults"
            );
        } else if pol.is_pinned(L) && mgr.view(L).state == StateKind::GlobalWritable {
            frozen = Some(s.coherence_invalidations);
        }
    }
    assert!(frozen.is_some(), "the flush budget must trip under fault injection too");
    assert_eq!(mgr.view(L).state, StateKind::GlobalWritable);
}

#[test]
fn move_limit_migrates_then_pins() {
    // Deterministic migrate-then-pin: two processors alternate stores
    // to one page. Each store steals ownership (a migration) until the
    // move budget is spent; after that the page is pinned global and
    // never moves again.
    let mut m = Machine::new(TopologyBuilder::small(2).config());
    let mut mgr = NumaManager::new();
    let mut pol = MoveLimitPolicy::new(2);
    const L: LPageId = LPageId(0);
    mgr.zero_page(L);

    let mut last_val = 0u32;
    for i in 0..10u32 {
        let cpu = CpuId((i % 2) as u16);
        let g = mgr.request(&mut m, L, Access::Store, cpu, &mut pol).unwrap();
        assert_eq!(m.mem.read_u32(g.frame, 0), last_val, "store {i} saw a stale page");
        last_val = i + 1;
        m.mem.write_u32(g.frame, 0, last_val);
        mgr.check_invariants(&mut m, L).unwrap();

        if pol.is_pinned(L) {
            assert_eq!(
                mgr.view(L).state,
                StateKind::GlobalWritable,
                "a pinned page must sit in global memory"
            );
        } else {
            assert_eq!(
                mgr.view(L).state,
                StateKind::LocalWritable(m.home_of(cpu)),
                "before pinning, each store steals ownership"
            );
        }
    }

    assert!(pol.is_pinned(L), "2 tolerated moves < 9 steals: page must pin");
    let moves_at_pin = mgr.view(L).move_count;
    assert!(moves_at_pin > pol.threshold(), "pin requires exceeding the budget");

    // Once pinned, further stores from either processor change nothing.
    for i in 0..4u32 {
        let cpu = CpuId((i % 2) as u16);
        mgr.request(&mut m, L, Access::Store, cpu, &mut pol).unwrap();
        assert_eq!(mgr.view(L).state, StateKind::GlobalWritable);
        assert_eq!(mgr.view(L).move_count, moves_at_pin, "pinned pages stop migrating");
        mgr.check_invariants(&mut m, L).unwrap();
    }
}
