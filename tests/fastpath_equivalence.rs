//! Differential suite: the batched fast path must be observationally
//! equivalent to the per-reference slow path.
//!
//! Every application in the paper mix runs twice — once with the
//! software-TLB fast path (the default), once with it disabled — under
//! the heaviest observability the harness offers: an event sink tapping
//! the machine and the NUMA manager, a per-reference sink on the
//! kernel, and (in the second test) deterministic fault injection with
//! recovery. Equivalence is judged on everything a user can see:
//!
//! * the `RunReport`, compared as byte-identical JSON *and* as the
//!   human rendering;
//! * the full event stream (bus traffic + protocol actions, in
//!   virtual-time order);
//! * the raw per-reference log — every address, access kind, distance,
//!   and virtual timestamp.
//!
//! The fast path is allowed to differ in exactly one place: MMU
//! hit-rate bookkeeping (it skips redundant hardware translations).
//! Nothing reported, streamed, or gated may move.

use numa_repro::apps::{paper_mix, App, KvServe, Scale, ServeParams};
use numa_repro::machine::FaultConfig;
use numa_repro::metrics::{Event, VecSink};
use numa_repro::numa::{CachePolicy, FlushLimitPolicy, MoveLimitPolicy, MoveOrFlushLimitPolicy};
use numa_repro::sim::{RefEvent, SimConfig, Simulator};
use std::sync::{Arc, Mutex};

const CPUS: usize = 3;

/// Everything observable about one run.
struct Observation {
    /// `RunReport` as flat JSON (the form the lab serializes).
    report_json: String,
    /// The report's human rendering.
    report_text: String,
    /// The structured event stream.
    events: Vec<Event>,
    /// The raw per-reference log.
    refs: Vec<RefEvent>,
}

/// Runs `app` under the given path and fault setting, capturing every
/// observable output.
fn observe(app: &dyn App, fastpath: bool, faults: bool) -> Observation {
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let mut cfg = SimConfig::small(CPUS).events(sink.clone()).fastpath(fastpath);
    if faults {
        // The lab's `faults` grid rates, at its committed seed: bus
        // timeouts, ECC-bad frames, and copy corruption all fire, and
        // all are recovered from.
        cfg = cfg.faults(FaultConfig {
            seed: 0x0ACE_5EED,
            bus_timeout_rate: 0.01,
            bad_frame_rate: 0.01,
            corruption_rate: 0.01,
            ..FaultConfig::default()
        });
    }
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    let refs = Arc::new(Mutex::new(Vec::new()));
    let tap = Arc::clone(&refs);
    sim.with_kernel(|k| {
        k.set_sink(Box::new(move |e: &RefEvent| tap.lock().unwrap().push(*e)))
    });
    app.run(&mut sim, CPUS)
        .unwrap_or_else(|e| panic!("{} failed verification: {e}", app.name()));
    let report = sim.report();
    let events = sink.lock().unwrap().events.clone();
    let refs = refs.lock().unwrap().clone();
    Observation {
        report_json: report.to_json().to_string_flat(),
        report_text: format!("{report}"),
        events,
        refs,
    }
}

/// Asserts that two observations are indistinguishable, with failure
/// messages that point at the first diverging element.
fn assert_equivalent(app: &str, slow: &Observation, fast: &Observation) {
    assert_eq!(
        slow.report_json, fast.report_json,
        "{app}: RunReport JSON diverged between paths"
    );
    assert_eq!(
        slow.report_text, fast.report_text,
        "{app}: report rendering diverged between paths"
    );
    assert_eq!(
        slow.events.len(),
        fast.events.len(),
        "{app}: event stream length diverged"
    );
    if let Some(i) = (0..slow.events.len()).find(|&i| slow.events[i] != fast.events[i]) {
        panic!(
            "{app}: event {i} diverged:\n  slow: {:?}\n  fast: {:?}",
            slow.events[i], fast.events[i]
        );
    }
    assert_eq!(
        slow.refs.len(),
        fast.refs.len(),
        "{app}: reference log length diverged"
    );
    if let Some(i) = (0..slow.refs.len()).find(|&i| slow.refs[i] != fast.refs[i]) {
        panic!(
            "{app}: reference {i} diverged:\n  slow: {:?}\n  fast: {:?}",
            slow.refs[i], fast.refs[i]
        );
    }
}

#[test]
#[ignore = "multi-second sweep of the full app mix; CI runs it via --ignored"]
fn every_app_is_equivalent_under_full_observability() {
    for app in paper_mix(Scale::Test) {
        let slow = observe(app.as_ref(), false, false);
        let fast = observe(app.as_ref(), true, false);
        assert!(
            !slow.refs.is_empty() || app.name() == "ParMult",
            "{}: instrumentation captured no references",
            app.name()
        );
        assert_equivalent(app.name(), &slow, &fast);
    }
}

#[test]
#[ignore = "multi-second sweep of the full app mix; CI runs it via --ignored"]
fn every_app_is_equivalent_under_fault_injection() {
    for app in paper_mix(Scale::Test) {
        let slow = observe(app.as_ref(), false, true);
        let fast = observe(app.as_ref(), true, true);
        assert_equivalent(app.name(), &slow, &fast);
    }
}

/// Hard-failure schedules: a node's memory dies mid-run and a processor
/// is stopped shortly after, under full observability. The software-TLB
/// fast path caches translations precisely where node-offline shootdowns
/// strike, so any staleness (a batched run charging a dead node's frame)
/// diverges the reference log, the event stream, or the report. The MMU
/// epoch bump on recovery must make both paths observationally
/// identical.
fn observe_hard_failure(fastpath: bool) -> Observation {
    use numa_repro::machine::{CpuId, HardFault, NodeId, Ns, Prot};
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let cfg = SimConfig::small(CPUS).events(sink.clone()).fastpath(fastpath).faults(
        FaultConfig {
            hard_faults: vec![
                HardFault::NodeOffline { node: NodeId(1), vt: Ns::from_us(700) },
                HardFault::CpuOffline { cpu: CpuId(2), vt: Ns::from_ms(1) },
            ],
            ..FaultConfig::default()
        },
    );
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    let refs = Arc::new(Mutex::new(Vec::new()));
    let tap = Arc::clone(&refs);
    sim.with_kernel(|k| {
        k.set_sink(Box::new(move |e: &RefEvent| tap.lock().unwrap().push(*e)))
    });
    let page = 256u64;
    let a = sim.alloc(16 * page, Prot::READ_WRITE);
    for t in 0..CPUS as u64 {
        sim.spawn(format!("mix-{t}"), move |ctx| {
            for round in 0..4u64 {
                for i in 0..16u64 {
                    // Batched same-page runs keep the fast path's TLB hot
                    // on shared pages every node replicates...
                    let _ = ctx.read_run(a + i * page, 4, 8);
                    // ...while interleaved writes keep ownership moving.
                    if i % (CPUS as u64) == t {
                        ctx.write_u32(a + i * page + 128 + t * 8, (round * 100 + i) as u32);
                    }
                    ctx.compute(Ns::from_us(25));
                }
            }
        });
    }
    let report = sim.run();
    let events = sink.lock().unwrap().events.clone();
    let refs = refs.lock().unwrap().clone();
    Observation {
        report_json: report.to_json().to_string_flat(),
        report_text: format!("{report}"),
        events,
        refs,
    }
}

#[test]
fn hard_failure_schedules_are_equivalent_across_paths() {
    let slow = observe_hard_failure(false);
    let fast = observe_hard_failure(true);
    assert!(
        slow.report_json.contains("\"nodes_offlined\":1"),
        "the schedule must actually kill the node: {}",
        slow.report_json
    );
    assert!(
        slow.report_json.contains("\"threads_drained\":"),
        "the stopped processor must drain its thread: {}",
        slow.report_json
    );
    assert!(!slow.refs.is_empty(), "instrumentation captured no references");
    assert_equivalent("hard-failure mix", &slow, &fast);
}

/// The serving workload under one placement policy, with full
/// observability plus the per-request latency histogram.
fn observe_kvserve(fastpath: bool, policy: Box<dyn CachePolicy>) -> Observation {
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let cfg = SimConfig::small(CPUS).events(sink.clone()).fastpath(fastpath);
    let mut sim = Simulator::new(cfg, policy);
    let refs = Arc::new(Mutex::new(Vec::new()));
    let tap = Arc::clone(&refs);
    sim.with_kernel(|k| {
        k.set_sink(Box::new(move |e: &RefEvent| tap.lock().unwrap().push(*e)))
    });
    KvServe::at_scale(Scale::Test)
        .run(&mut sim, CPUS)
        .unwrap_or_else(|e| panic!("KvServe failed verification: {e}"));
    let report = sim.report();
    assert!(report.serving.is_some(), "the serving workload must attach its histogram");
    let events = sink.lock().unwrap().events.clone();
    let refs = refs.lock().unwrap().clone();
    Observation {
        report_json: report.to_json().to_string_flat(),
        report_text: format!("{report}"),
        events,
        refs,
    }
}

/// The serving workload under the flush-aware policies: open-loop
/// arrivals, the per-request latency histogram, and the new flush-pin
/// accounting (counters and `flush_pinned` events alike) must be
/// byte-identical across access paths for every policy on the serving
/// grid's axis.
#[test]
fn kvserve_is_equivalent_across_paths_under_every_policy() {
    type MakePolicy = fn() -> Box<dyn CachePolicy>;
    let policies: [(&str, MakePolicy); 3] = [
        ("move-limit", || Box::new(MoveLimitPolicy::default())),
        ("flush-limit", || Box::new(FlushLimitPolicy::default())),
        ("move-or-flush", || Box::new(MoveOrFlushLimitPolicy::default())),
    ];
    for (name, make) in policies {
        let slow = observe_kvserve(false, make());
        let fast = observe_kvserve(true, make());
        assert!(!slow.refs.is_empty(), "KvServe/{name}: no references captured");
        assert_equivalent(&format!("KvServe/{name}"), &slow, &fast);
    }
    // The flush-aware runs must actually exercise the new machinery —
    // otherwise the equivalence above proves nothing about it.
    let flush = observe_kvserve(true, Box::new(FlushLimitPolicy::default()));
    assert!(
        flush.report_json.contains("\"flush_pins\":"),
        "the flush budget never tripped on the serving workload: {}",
        flush.report_json
    );
}

/// The serving workload under explicit parameters and an optional
/// hard-failure schedule. Verification may legitimately fail once a
/// node's memory dies (shards homed there zero-fill); what matters is
/// that both paths observe the *same* outcome, so the run verdict is
/// part of the observation rather than a panic.
fn observe_kvserve_under(
    fastpath: bool,
    params: ServeParams,
    hard: bool,
) -> (Observation, Result<(), String>) {
    use numa_repro::machine::{CpuId, HardFault, NodeId, Ns};
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let mut cfg = SimConfig::small(CPUS).events(sink.clone()).fastpath(fastpath);
    if hard {
        cfg = cfg.faults(FaultConfig {
            hard_faults: vec![
                HardFault::NodeOffline { node: NodeId(1), vt: Ns::from_ms(5) },
                HardFault::CpuOffline { cpu: CpuId(2), vt: Ns::from_ms(10) },
            ],
            ..FaultConfig::default()
        });
    }
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    let refs = Arc::new(Mutex::new(Vec::new()));
    let tap = Arc::clone(&refs);
    sim.with_kernel(|k| {
        k.set_sink(Box::new(move |e: &RefEvent| tap.lock().unwrap().push(*e)))
    });
    let verdict = KvServe::new(params).run(&mut sim, CPUS);
    let report = sim.report();
    let events = sink.lock().unwrap().events.clone();
    let refs = refs.lock().unwrap().clone();
    let obs = Observation {
        report_json: report.to_json().to_string_flat(),
        report_text: format!("{report}"),
        events,
        refs,
    };
    (obs, verdict)
}

/// Overload parameters hot enough to shed through every knob: a burst
/// far past what three processors serve, bounded queues, tight
/// deadlines, and a throttled tenant mix.
fn overload_params() -> ServeParams {
    ServeParams {
        requests: 384,
        rate: 20_000,
        tenants: 3,
        queue_depth: 6,
        deadline_ns: 300_000,
        tenant_quota: 2_000,
        ..ServeParams::for_scale(Scale::Test)
    }
}

/// The serving workload with every overload knob engaged must shed
/// deterministically and identically across access paths: same ledger,
/// same goodput tail, same event stream, same reference log.
#[test]
fn kvserve_overload_is_equivalent_across_paths() {
    let (slow, sv) = observe_kvserve_under(false, overload_params(), false);
    let (fast, fv) = observe_kvserve_under(true, overload_params(), false);
    sv.as_ref().expect("overload without hard faults still verifies");
    assert_eq!(sv, fv, "run verdict diverged between paths");
    assert!(
        slow.report_json.contains("\"shed_queue_full\":"),
        "the overload knobs never engaged: {}",
        slow.report_json
    );
    assert!(slow.report_json.contains("\"goodput_p99_ns\":"));
    assert!(slow.report_text.contains("admission:"), "report rendering lacks the admission line");
    assert_equivalent("KvServe/overload", &slow, &fast);
}

/// The serving workload while a node's memory dies and a processor is
/// stopped mid-serve: drained queues shed by deadline, recovery re-homes
/// what it can, and whatever the outcome — verified or degraded — both
/// paths must tell the same story byte for byte.
#[test]
fn kvserve_hard_failure_is_equivalent_across_paths() {
    let (slow, sv) = observe_kvserve_under(false, overload_params(), true);
    let (fast, fv) = observe_kvserve_under(true, overload_params(), true);
    assert_eq!(sv, fv, "run verdict diverged between paths");
    assert!(
        slow.report_json.contains("\"nodes_offlined\":1"),
        "the schedule must actually kill the node: {}",
        slow.report_json
    );
    assert!(
        slow.report_json.contains("\"threads_drained\":"),
        "the stopped processor must drain its worker: {}",
        slow.report_json
    );
    // The serving report still attaches with its deterministic ledger,
    // even when recovery could not save every shard.
    assert!(slow.report_json.contains("\"admitted\":"));
    assert_equivalent("KvServe/hard-failure", &slow, &fast);
    // And the whole composition is deterministic, not merely
    // path-equivalent: a rerun reproduces the exact bytes.
    let (again, av) = observe_kvserve_under(true, overload_params(), true);
    assert_eq!(av, fv);
    assert_eq!(again.report_json, fast.report_json, "rerun diverged");
}

/// The policy-comparison serving sweep at several worker counts: the
/// whole document — placements, policies, counters, percentiles — is
/// byte-identical whether cells run serially or on 4 or 8 farm threads.
#[test]
fn serving_policy_sweep_is_byte_identical_across_worker_counts() {
    let mut grid = numa_lab::Grid::serving();
    grid.req_rates = vec![2_000];
    grid.zipf_exponents = vec![1.5];
    grid.tenant_counts = vec![1];
    let jobs = grid.jobs();
    assert_eq!(jobs.len(), 5, "local + global + one numa cell per policy");
    let j1 = numa_lab::Sweep::run(grid.clone(), 1, None).unwrap().to_json().to_string_flat();
    let j4 = numa_lab::Sweep::run(grid.clone(), 4, None).unwrap().to_json().to_string_flat();
    let j8 = numa_lab::Sweep::run(grid, 8, None).unwrap().to_json().to_string_flat();
    assert_eq!(j1, j4, "--jobs 1 vs --jobs 4 diverged");
    assert_eq!(j1, j8, "--jobs 1 vs --jobs 8 diverged");
    assert!(j1.contains("\"policy\":\"flush-limit\""));
    assert!(j1.contains("\"coherence_invalidations\":"));
}

/// A cut-down overload sweep — saturated load, every protection knob,
/// healthy and node-loss cells — is byte-identical across farm worker
/// counts and across access paths.
#[test]
fn overload_sweep_is_byte_identical_across_workers_and_paths() {
    let mut grid = numa_lab::Grid::overload();
    grid.policies.truncate(1);
    grid.req_rates = vec![32_000];
    grid.queue_depths = vec![8];
    grid.deadlines_ns = vec![400_000];
    grid.tenant_quotas = vec![800];
    let jobs = grid.jobs();
    assert_eq!(jobs.len(), 2, "one healthy and one node-loss cell");
    let j1 = numa_lab::Sweep::run(grid.clone(), 1, None).unwrap().to_json().to_string_flat();
    let j4 = numa_lab::Sweep::run(grid.clone(), 4, None).unwrap().to_json().to_string_flat();
    let j8 = numa_lab::Sweep::run(grid.clone(), 8, None).unwrap().to_json().to_string_flat();
    assert_eq!(j1, j4, "--jobs 1 vs --jobs 4 diverged");
    assert_eq!(j1, j8, "--jobs 1 vs --jobs 8 diverged");
    let mut slow_grid = grid;
    slow_grid.fastpath = false;
    let slow = numa_lab::Sweep::run(slow_grid, 4, None).unwrap().to_json().to_string_flat();
    // Sweep documents never stamp the access path, so observational
    // equivalence means the slow-path document is the same bytes.
    assert_eq!(j1, slow, "fast vs slow path diverged");
    assert!(j1.contains("\"shed_queue_full\":"));
    assert!(j1.contains("\"nodes_offlined\":1"), "the chaos cell must kill its node");
}

/// The fast path must actually engage: on a run-shaped workload the MMU
/// translates far fewer times than the slow path, which is the whole
/// point — and the only permitted difference.
#[test]
fn fast_path_skips_translations_but_nothing_else() {
    let translations = |fastpath: bool| {
        let cfg = SimConfig::small(2).fastpath(fastpath);
        let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
        numa_repro::apps::Gfetch::new(Scale::Test)
            .run(&mut sim, 2)
            .expect("verified");
        sim.with_kernel(|k| {
            k.machine.mmus.iter().map(|m| m.stats().hits).sum::<u64>()
        })
    };
    let slow = translations(false);
    let fast = translations(true);
    assert!(
        fast * 10 < slow,
        "fast path should eliminate most translations: {fast} vs {slow}"
    );
}
