//! Property-based tests: random workloads against a shadow memory
//! model, protocol invariants under arbitrary request sequences, and
//! model algebra.

use numa_repro::machine::{Access, CpuId, Machine, NodeId, Prot, TopologyBuilder};
use numa_repro::metrics::{parse, validate, Json, Model};
use numa_repro::numa::{
    AllGlobalPolicy, AllLocalPolicy, CachePolicy, MoveLimitPolicy, NumaManager, Placement,
    StateKind,
};
use numa_repro::sim::{SimConfig, Simulator};
use numa_repro::vm::LPageId;
use proptest::prelude::*;

/// A policy that answers from a script (cycled), covering the remote
/// extension alongside the two-level placements.
struct ScriptedPolicy {
    script: Vec<u8>,
    i: usize,
}

impl CachePolicy for ScriptedPolicy {
    fn name(&self) -> &'static str {
        "scripted"
    }
    fn decide(&mut self, _: LPageId, _: Access, cpu: CpuId) -> Placement {
        let pick = self.script[self.i % self.script.len()];
        self.i += 1;
        match pick % 4 {
            0 => Placement::Local,
            1 => Placement::Global,
            2 => Placement::RemoteAt(NodeId(cpu.0)),
            _ => Placement::RemoteAt(NodeId((pick % 3) as u16)),
        }
    }
}

/// One scripted thread operation for the end-to-end property.
#[derive(Clone, Debug)]
enum Op {
    Write { slot: u8, value: u32 },
    Read { slot: u8 },
    Compute { us: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(slot, value)| Op::Write { slot, value }),
        any::<u8>().prop_map(|slot| Op::Read { slot }),
        (1u16..50).prop_map(|us| Op::Compute { us }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// End-to-end coherence: threads execute random scripts over a
    /// shared region; every read must observe the value the *shadow*
    /// sequentially-consistent model predicts, for every policy. The
    /// scripts are partitioned so each slot has a single writer (so the
    /// shadow is well-defined) but readers roam everywhere, exercising
    /// replication, migration and pinning.
    #[test]
    fn random_scripts_match_shadow_model(
        scripts in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..60), 2..4),
        policy_pick in 0usize..3,
    ) {
        let n = scripts.len();
        let policy: Box<dyn CachePolicy> = match policy_pick {
            0 => Box::new(MoveLimitPolicy::new(2)),
            1 => Box::new(AllGlobalPolicy),
            _ => Box::new(AllLocalPolicy),
        };
        let mut sim = Simulator::new(SimConfig::small(n), policy);
        let base = sim.alloc(16 * 1024, Prot::READ_WRITE);
        for (t, script) in scripts.clone().into_iter().enumerate() {
            sim.spawn(format!("script-{t}"), move |ctx| {
                let mut shadow: std::collections::HashMap<u64, u32> =
                    std::collections::HashMap::new();
                for op in script {
                    match op {
                        Op::Write { slot, value } => {
                            // Writer-partitioned: thread t owns slots
                            // congruent to t.
                            let s = (slot as usize * n + t) as u64;
                            ctx.write_u32(base + s * 4, value);
                            shadow.insert(s, value);
                        }
                        Op::Read { slot } => {
                            // Read own slots (values known) — reads of
                            // others' slots are done below, unchecked
                            // but placement-relevant.
                            let own = (slot as usize * n + t) as u64;
                            let got = ctx.read_u32(base + own * 4);
                            let want = shadow.get(&own).copied().unwrap_or(0);
                            assert_eq!(got, want, "thread {t} slot {own}");
                            // Roaming read of a neighbour's slot.
                            let other = (slot as usize * n + (t + 1) % n) as u64;
                            let _ = ctx.read_u32(base + other * 4);
                        }
                        Op::Compute { us } => {
                            ctx.compute(numa_repro::machine::Ns::from_us(us as u64))
                        }
                    }
                }
                // Final self-check of every slot written.
                for (&s, &v) in &shadow {
                    assert_eq!(ctx.read_u32(base + s * 4), v);
                }
            });
        }
        sim.run();
        sim.with_kernel(|k| k.check_consistency()).unwrap();
    }

    /// Protocol invariants under arbitrary request sequences fed
    /// directly to the NUMA manager: at most one writable copy, replicas
    /// byte-identical to a valid global frame, pinned pages global.
    #[test]
    fn manager_invariants_under_random_requests(
        reqs in proptest::collection::vec(
            (0u32..6, 0u16..4, any::<bool>(), any::<u32>()), 1..120),
        threshold in 0u32..6,
    ) {
        let mut m = Machine::new(TopologyBuilder::small(4).config());
        let mut mgr = NumaManager::new();
        let mut pol = MoveLimitPolicy::new(threshold);
        // Shadow content per page: last value written to offset 0.
        let mut shadow: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        for (page, cpu, is_write, value) in reqs {
            let lpage = LPageId(page);
            let cpu = CpuId(cpu);
            if mgr.view(lpage).state == StateKind::Fresh {
                mgr.zero_page(lpage);
            }
            let kind = if is_write { Access::Store } else { Access::Fetch };
            let grant = mgr.request(&mut m, lpage, kind, cpu, &mut pol).unwrap();
            if is_write {
                m.mem.write_u32(grant.frame, 0, value);
                shadow.insert(page, value);
            } else {
                let got = m.mem.read_u32(grant.frame, 0);
                let want = shadow.get(&page).copied().unwrap_or(0);
                prop_assert_eq!(got, want, "page {} on {}", page, cpu);
            }
            mgr.check_invariants(&mut m, lpage).map_err(
                TestCaseError::fail)?;
            // A pinned page must be global-writable.
            if pol.is_pinned(lpage) {
                prop_assert_eq!(mgr.view(lpage).state, StateKind::GlobalWritable);
            }
        }
    }

    /// Model algebra: solve() inverts the forward model for any
    /// plausible (alpha, beta, G/L).
    #[test]
    fn model_roundtrip(
        alpha in 0.0f64..1.0,
        beta in 0.05f64..1.0,
        g_over_l in 1.2f64..4.0,
        t_local in 1.0f64..10_000.0,
    ) {
        let t_numa = Model::predict_t_numa(t_local, alpha, beta, g_over_l);
        let t_global = Model::predict_t_global(t_local, beta, g_over_l);
        // Skip regions below the insensitivity threshold.
        prop_assume!(t_global - t_local > t_local * 0.02);
        let m = Model::solve(t_global, t_numa, t_local, g_over_l).unwrap();
        prop_assert!((m.alpha - alpha).abs() < 1e-6);
        prop_assert!((m.beta - beta).abs() < 1e-6);
    }

    /// Protocol invariants hold under arbitrary request sequences even
    /// when the policy mixes in the remote-reference extension, and
    /// data is never lost across Local/Global/Remote transitions.
    #[test]
    fn manager_invariants_with_remote_placements(
        reqs in proptest::collection::vec(
            (0u32..4, 0u16..4, any::<bool>(), any::<u32>()), 1..100),
        script in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut m = Machine::new(TopologyBuilder::small(4).config());
        let mut mgr = NumaManager::new();
        let mut pol = ScriptedPolicy { script, i: 0 };
        let mut shadow: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        for (page, cpu, is_write, value) in reqs {
            let lpage = LPageId(page);
            let cpu = CpuId(cpu);
            if mgr.view(lpage).state == StateKind::Fresh {
                mgr.zero_page(lpage);
            }
            let kind = if is_write { Access::Store } else { Access::Fetch };
            let grant = mgr.request(&mut m, lpage, kind, cpu, &mut pol).unwrap();
            if is_write {
                m.mem.write_u32(grant.frame, 0, value);
                shadow.insert(page, value);
            } else {
                let got = m.mem.read_u32(grant.frame, 0);
                let want = shadow.get(&page).copied().unwrap_or(0);
                prop_assert_eq!(got, want, "page {} on {}", page, cpu);
            }
            mgr.check_invariants(&mut m, lpage).map_err(
                TestCaseError::fail)?;
        }
    }

    /// The pageout daemon under random working sets: data survives any
    /// sequence of evictions and page-ins, and the pool never
    /// over-commits.
    #[test]
    fn pageout_preserves_data_under_random_pressure(
        writes in proptest::collection::vec((0u64..12, any::<u32>()), 1..80),
        pool in 2usize..6,
    ) {
        let mut cfg = SimConfig::small(1);
        cfg.machine.global_frames = pool;
        let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
        let page = 256u64;
        let a = sim.alloc(12 * page, Prot::READ_WRITE);
        let script = writes.clone();
        sim.spawn("presser", move |ctx| {
            let mut shadow: std::collections::HashMap<u64, u32> =
                std::collections::HashMap::new();
            for (slot, value) in script {
                let addr = a + slot * page;
                let got = ctx.read_u32(addr);
                let want = shadow.get(&slot).copied().unwrap_or(0);
                assert_eq!(got, want, "slot {slot} lost its value");
                ctx.write_u32(addr, value);
                shadow.insert(slot, value);
            }
        });
        sim.run();
        // Final contents visible through peek (frame, fill or swap).
        let mut fin: std::collections::HashMap<u64, u32> =
            std::collections::HashMap::new();
        for (slot, value) in &writes {
            fin.insert(*slot, *value);
        }
        for (slot, value) in fin {
            prop_assert_eq!(
                sim.with_kernel(|k| k.peek_u32(a + slot * page)),
                value
            );
        }
        prop_assert!(sim.with_kernel(|k| k.vm.pool().free_pages()) <= pool);
        sim.with_kernel(|k| k.check_consistency()).unwrap();
    }

    /// Frame allocator: alloc/free sequences never lose or duplicate
    /// frames.
    #[test]
    fn frame_allocator_conserves_frames(
        ops in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        use numa_repro::machine::MemRegion;
        let cfg = TopologyBuilder::small(1).config();
        let total = cfg.global_frames;
        let mut m = numa_repro::machine::PhysMem::new(&cfg);
        let mut held = Vec::new();
        for alloc in ops {
            if alloc {
                if let Ok(f) = m.alloc(MemRegion::Global) {
                    prop_assert!(!held.contains(&f), "duplicate frame {f:?}");
                    held.push(f);
                }
            } else if let Some(f) = held.pop() {
                m.free(f);
            }
            prop_assert_eq!(
                m.free_frames(MemRegion::Global) + held.len(),
                total
            );
        }
    }
}

/// Any value the report writer can emit losslessly: finite floats only
/// (JSON has no NaN/Inf), with integral-valued floats kept below 1e15
/// so they retain their `.0` marker when rendered — above that
/// threshold the serializer prints plain digits and the parser
/// (correctly) reads them back as integers.
struct JsonStrategy {
    depth: u32,
}

/// Characters chosen to stress every serializer path: plain ASCII,
/// everything `write_escaped` special-cases, raw controls that become
/// `\u` escapes, structural bytes that must stay quoted, multi-byte
/// and non-BMP code points.
const STRESS_CHARS: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{8}', '\u{c}', '\u{1f}',
    '\u{7f}', '{', '}', '[', ']', ':', ',', 'é', 'λ', '中', '😀',
];

fn stress_string(rng: &mut TestRng) -> String {
    let len = rng.next_u64() % 9;
    (0..len)
        .map(|_| STRESS_CHARS[(rng.next_u64() % STRESS_CHARS.len() as u64) as usize])
        .collect()
}

fn stress_float(rng: &mut TestRng) -> f64 {
    match rng.next_u64() % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MAX,
        3 => f64::MIN_POSITIVE,
        4 => 1e-300,
        // Integral-valued but under the `.0`-marker threshold.
        5 => (rng.next_u64() % 1_000_000) as f64,
        _ => (rng.next_f64() - 0.5) * 2e15,
    }
}

fn gen_json(rng: &mut TestRng, depth: u32) -> Json {
    let arms = if depth == 0 { 5 } else { 7 };
    match rng.next_u64() % arms {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64() & 1 == 1),
        2 => Json::Int(rng.next_u64() as i64),
        3 => Json::Num(stress_float(rng)),
        4 => Json::Str(stress_string(rng)),
        5 => Json::Arr((0..rng.next_u64() % 5).map(|_| gen_json(rng, depth - 1)).collect()),
        _ => Json::Obj(
            (0..rng.next_u64() % 5)
                .map(|_| (stress_string(rng), gen_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

impl Strategy for JsonStrategy {
    type Value = Json;
    fn gen_value(&self, rng: &mut TestRng) -> Json {
        gen_json(rng, self.depth)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `parse` inverts serialization on everything the writer can
    /// produce — including escaped strings, nested containers, and
    /// insertion-ordered object members — and serializing the parse
    /// result is a fixed point (so committed baselines re-render
    /// byte-identically after a load/store cycle).
    #[test]
    fn json_parse_inverts_serialization(v in JsonStrategy { depth: 3 }) {
        let text = v.to_string_flat();
        prop_assert!(validate(&text).is_ok(), "emitted invalid JSON: {text}");
        let back = parse(&text);
        prop_assert!(back.is_ok(), "parse failed on {}: {:?}", text, back);
        let back = back.unwrap();
        prop_assert_eq!(&back, &v, "round trip changed the value of {}", text);
        prop_assert_eq!(back.to_string_flat(), text);
    }

    /// One document per file: anything after a complete value is an
    /// error, never silently ignored.
    #[test]
    fn json_parse_rejects_trailing_garbage(
        v in JsonStrategy { depth: 2 },
        junk in 0u64..u64::MAX,
    ) {
        let junk = ["x", "]", "}", ",", "null", "\"s\"", "1"][(junk % 7) as usize];
        let text = format!("{} {junk}", v.to_string_flat());
        prop_assert!(parse(&text).is_err());
        prop_assert!(validate(&text).is_err());
    }
}

#[test]
fn json_parse_rejects_what_json_cannot_say() {
    // NaN and infinities are unrepresentable: the writer demotes them
    // to null, and the reader refuses every spelling of them.
    assert_eq!(Json::Num(f64::NAN).to_string_flat(), "null");
    assert_eq!(Json::Num(f64::INFINITY).to_string_flat(), "null");
    for bad in [
        "NaN", "nan", "Infinity", "-Infinity", "inf", // non-finite spellings
        "\"\\q\"", "\"\\u12zz\"", "\"\\u123\"", // bad escapes
        "tru", "-", "1.", "1e", "01x", // truncated tokens
    ] {
        assert!(parse(bad).is_err(), "parse accepted {bad:?}");
        assert!(validate(bad).is_err(), "validate accepted {bad:?}");
    }
    // Lexically valid escape, semantically impossible code point: the
    // grammar checker passes it, materialization refuses it.
    assert!(validate("\"\\ud800\"").is_ok());
    assert!(parse("\"\\ud800\"").is_err(), "unpaired surrogate materialized");
}
