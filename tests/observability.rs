//! End-to-end guarantees of the observability pipeline: the event
//! stream is deterministic, the JSON report is deterministic, and an
//! absent sink changes nothing about a run's results.

use numa_repro::apps::{App, IMatMult};
use numa_repro::metrics::{Telemetry, VecSink};
use numa_repro::numa::{CachePolicy, MoveLimitPolicy, ReconsiderPolicy};
use numa_repro::sim::{RunReport, SimConfig, Simulator};
use std::sync::{Arc, Mutex};

const CPUS: usize = 3;

fn run_with_sink(policy: Box<dyn CachePolicy>) -> (RunReport, Vec<numa_repro::metrics::Event>) {
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let cfg = SimConfig::small(CPUS).events(sink.clone());
    let mut sim = Simulator::new(cfg, policy);
    IMatMult::with_dim(12).expect("valid dimension").run(&mut sim, CPUS).expect("verified");
    let report = sim.report();
    let events = sink.lock().unwrap().events.clone();
    (report, events)
}

fn run_without_sink(policy: Box<dyn CachePolicy>) -> RunReport {
    let mut sim = Simulator::new(SimConfig::small(CPUS), policy);
    IMatMult::with_dim(12).expect("valid dimension").run(&mut sim, CPUS).expect("verified");
    sim.report()
}

#[test]
fn identical_runs_produce_identical_event_streams() {
    let (r1, e1) = run_with_sink(Box::new(MoveLimitPolicy::default()));
    let (r2, e2) = run_with_sink(Box::new(MoveLimitPolicy::default()));
    assert!(!e1.is_empty(), "an instrumented run must emit events");
    assert_eq!(e1, e2, "event streams must be identical run to run");
    assert_eq!(
        r1.to_json().to_string_flat(),
        r2.to_json().to_string_flat(),
        "JSON reports must be byte-identical run to run"
    );
}

#[test]
fn event_stream_serializes_to_valid_json() {
    let (_, events) = run_with_sink(Box::new(MoveLimitPolicy::default()));
    let sink = VecSink { events };
    let text = sink.to_json().to_string_flat();
    numa_repro::metrics::validate(&text).expect("event log must be valid JSON");
}

#[test]
fn disabled_sink_leaves_results_byte_identical() {
    let plain = run_without_sink(Box::new(ReconsiderPolicy::new(4, 8)));
    let (tapped, events) = run_with_sink(Box::new(ReconsiderPolicy::new(4, 8)));
    assert!(!events.is_empty());
    // Observation is free: every measured quantity, and therefore both
    // renderings of the report, match a run with no sink installed.
    assert_eq!(plain.to_json().to_string_flat(), tapped.to_json().to_string_flat());
    assert_eq!(format!("{plain}"), format!("{tapped}"));
}

#[test]
fn telemetry_aggregates_a_real_run() {
    let telemetry = Arc::new(Mutex::new(Telemetry::new()));
    let cfg = SimConfig::small(CPUS).events(telemetry.clone());
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    IMatMult::with_dim(12).expect("valid dimension").run(&mut sim, CPUS).expect("verified");
    let report = sim.report();
    let tel = telemetry.lock().unwrap();
    assert!(tel.events_seen() > 0);
    assert!(tel.pages_tracked() > 0, "page lifecycles must be recorded");
    // The policy pinned some pages; the lifecycle view must agree with
    // the run report's aggregate counters.
    let json = tel.to_json().to_string_flat();
    numa_repro::metrics::validate(&json).expect("telemetry JSON must parse");
    if report.numa.pins > 0 {
        assert!(
            json.contains("\"what\":\"pinned\""),
            "a pinned page's lifecycle must record the pin"
        );
    }
}
