//! Degenerate-equivalence suite: the topology redesign must be
//! invisible on the paper's flat machine.
//!
//! The ACE of the paper — one bus, one global memory, flat per-CPU
//! local memories — is now just `TopologyBuilder::flat_ace(n)`, a
//! degenerate value of the general machine description. Nothing a user
//! can observe may move between two independently built descriptions
//! of that machine, or between the simulator's two access paths:
//!
//! * the `RunReport`, compared as byte-identical JSON *and* as the
//!   human rendering;
//! * the full event stream (bus traffic + protocol actions, in
//!   virtual-time order);
//! * the raw per-reference log — every address, access kind, distance,
//!   and virtual timestamp.
//!
//! The committed sweep baselines are the pre-refactor record of those
//! bytes, so the smoke document regenerating byte-identically in
//! process closes the loop back to the code before the redesign. On a
//! *hierarchical* machine the same instrumentation must visibly
//! change: that contrast is what proves the flat checks are not
//! vacuous.

use numa_repro::apps::{App, Gfetch, IMatMult, Scale};
use numa_repro::machine::{MachineConfig, TopologyBuilder};
use numa_repro::metrics::{Event, VecSink};
use numa_repro::numa::MoveLimitPolicy;
use numa_repro::sim::{RefEvent, SimConfig, Simulator};
use std::sync::{Arc, Mutex};

const CPUS: usize = 3;

/// Everything observable about one run.
struct Observation {
    /// `RunReport` as flat JSON (the form the lab serializes).
    report_json: String,
    /// The report's human rendering.
    report_text: String,
    /// The structured event stream.
    events: Vec<Event>,
    /// The raw per-reference log.
    refs: Vec<RefEvent>,
}

/// Runs `app` on the given machine description under full
/// observability (event sink + per-reference sink), on the chosen
/// access path.
fn observe(app: &dyn App, machine: MachineConfig, fastpath: bool) -> Observation {
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let cfg = SimConfig::small(CPUS)
        .machine(machine)
        .events(sink.clone())
        .fastpath(fastpath);
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    let refs = Arc::new(Mutex::new(Vec::new()));
    let tap = Arc::clone(&refs);
    sim.with_kernel(|k| {
        k.set_sink(Box::new(move |e: &RefEvent| tap.lock().unwrap().push(*e)))
    });
    app.run(&mut sim, CPUS)
        .unwrap_or_else(|e| panic!("{} failed verification: {e}", app.name()));
    let report = sim.report();
    let events = sink.lock().unwrap().events.clone();
    let refs = refs.lock().unwrap().clone();
    Observation {
        report_json: report.to_json().to_string_flat(),
        report_text: format!("{report}"),
        events,
        refs,
    }
}

/// Asserts that two observations are indistinguishable, with failure
/// messages that point at the first diverging element.
fn assert_equivalent(tag: &str, a: &Observation, b: &Observation) {
    assert_eq!(a.report_json, b.report_json, "{tag}: RunReport JSON diverged");
    assert_eq!(a.report_text, b.report_text, "{tag}: report rendering diverged");
    assert_eq!(a.events.len(), b.events.len(), "{tag}: event stream length diverged");
    if let Some(i) = (0..a.events.len()).find(|&i| a.events[i] != b.events[i]) {
        panic!("{tag}: event {i} diverged:\n  a: {:?}\n  b: {:?}", a.events[i], b.events[i]);
    }
    assert_eq!(a.refs.len(), b.refs.len(), "{tag}: reference log length diverged");
    if let Some(i) = (0..a.refs.len()).find(|&i| a.refs[i] != b.refs[i]) {
        panic!("{tag}: reference {i} diverged:\n  a: {:?}\n  b: {:?}", a.refs[i], b.refs[i]);
    }
}

/// Two independently built flat descriptions must be the same machine,
/// observably, on both access paths — and the two paths must agree
/// with each other on the flat machine.
#[test]
fn flat_runs_are_identical_across_builds_and_paths() {
    for app in [&Gfetch::new(Scale::Test) as &dyn App, &IMatMult::new(Scale::Test)] {
        let builder = || TopologyBuilder::flat_ace(CPUS).config();

        let first_fast = observe(app, builder(), true);
        let built_fast = observe(app, builder(), true);
        let first_slow = observe(app, builder(), false);
        let built_slow = observe(app, builder(), false);

        assert!(!built_fast.refs.is_empty(), "{}: no references captured", app.name());
        assert_equivalent(&format!("{} rebuild (fast)", app.name()), &first_fast, &built_fast);
        assert_equivalent(&format!("{} rebuild (slow)", app.name()), &first_slow, &built_slow);
        assert_equivalent(&format!("{} fast-vs-slow (builder)", app.name()), &built_fast, &built_slow);
    }
}

/// A flat report must keep its exact pre-topology shape: the counters
/// that only a hierarchical machine can produce never appear in its
/// JSON, and the description itself knows it is degenerate.
#[test]
fn flat_reports_keep_their_pre_topology_shape() {
    let cfg = TopologyBuilder::flat_ace(CPUS).config();
    assert!(cfg.topology.is_flat(), "flat_ace must be the degenerate shape");
    assert_eq!(cfg.topology.max_hops(), 1, "flat machines have sibling hops only");
    let o = observe(&Gfetch::new(Scale::Test), cfg, true);
    assert!(
        !o.report_json.contains("near_replications"),
        "a flat report may never mention the hierarchical counter: {}",
        o.report_json
    );
}

/// The contrast run: the same app and policy on a 2x2 mesh must take
/// the replicate-from-nearest path — visible both as the serialized
/// counter and as cheaper copies — or the flat equivalence above would
/// be vacuously checking a machine the redesign never varies.
#[test]
fn hierarchical_runs_are_observably_different() {
    let mesh = TopologyBuilder::mesh(4, 1).config();
    assert!(!mesh.topology.is_flat());
    assert!(mesh.topology.max_hops() >= 2, "a 2x2 mesh has a 2-hop diagonal");
    let o = observe(&Gfetch::new(Scale::Test), mesh, true);
    assert!(
        o.report_json.contains("\"near_replications\":"),
        "a mesh run must serialize the hierarchical counter: {}",
        o.report_json
    );
    let flat = observe(&Gfetch::new(Scale::Test), TopologyBuilder::flat_ace(4).config(), true);
    assert_ne!(
        o.report_json, flat.report_json,
        "a mesh machine must not report like the flat machine"
    );
}

/// The committed smoke baseline is the pre-refactor record of the flat
/// machine's bytes; regenerating it in process proves the whole
/// pipeline — grid, farm, report serialization — is untouched by the
/// redesign.
#[test]
fn committed_smoke_baseline_regenerates_byte_identically() {
    use numa_lab::{Grid, Sweep};
    let doc = Sweep::run(Grid::smoke(), 2, None).unwrap().to_json().to_string_flat();
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_smoke.json"))
            .expect("committed baseline readable");
    assert_eq!(doc, committed, "smoke sweep no longer matches its committed bytes");
}

/// The committed hierarchical baseline regenerates byte-identically
/// too, at different worker counts: topology cells are as
/// deterministic as flat ones.
#[test]
fn committed_topology_baseline_regenerates_byte_identically() {
    use numa_lab::{Grid, Sweep};
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_topology.json"))
            .expect("committed baseline readable");
    for jobs in [1, 4] {
        let doc = Sweep::run(Grid::named("topology").unwrap(), jobs, None)
            .unwrap()
            .to_json()
            .to_string_flat();
        assert_eq!(doc, committed, "topology sweep diverged at --jobs {jobs}");
    }
}
