//! Cross-crate integration: the whole stack (machine, VM, NUMA layer,
//! engine, threads, applications) working together.

use numa_repro::apps::{
    paper_mix, App, DivisorDiscipline, Fft, Gfetch, IMatMult, Primes2, Primes3, Scale,
};
use numa_repro::numa::{AllGlobalPolicy, AllLocalPolicy, CachePolicy, MoveLimitPolicy};
use numa_repro::sim::{SimConfig, Simulator};

type PolicyCtor = Box<dyn Fn() -> Box<dyn CachePolicy>>;

fn policies() -> Vec<(&'static str, PolicyCtor)> {
    vec![
        ("move-limit", Box::new(|| Box::new(MoveLimitPolicy::default()))),
        ("all-global", Box::new(|| Box::new(AllGlobalPolicy))),
        ("all-local", Box::new(|| Box::new(AllLocalPolicy))),
    ]
}

/// Every application must produce verified-correct output under every
/// policy: placement can change time, never answers.
#[test]
#[ignore = "multi-second sweep of the full app mix; CI runs it via --ignored"]
fn all_apps_correct_under_all_policies() {
    for app in paper_mix(Scale::Test) {
        for (pname, make) in policies() {
            let mut sim = Simulator::new(SimConfig::small(3), make());
            app.run(&mut sim, 3)
                .unwrap_or_else(|e| panic!("{} under {pname}: {e}", app.name()));
            sim.with_kernel(|k| k.check_consistency())
                .unwrap_or_else(|e| panic!("{} under {pname}: {e}", app.name()));
        }
    }
}

/// The fundamental ordering of the paper's methodology: for placement-
/// sensitive applications, T_local <= T_numa <= T_global (allowing a
/// small tolerance for simulation noise on T_numa's upper side).
#[test]
fn time_ordering_local_numa_global() {
    for app in [
        Box::new(IMatMult::new(Scale::Test)) as Box<dyn App>,
        Box::new(Fft::new(Scale::Test)),
        Box::new(Gfetch::new(Scale::Test)),
    ] {
        let numa = numa_repro::apps::measure_once(
            app.as_ref(),
            SimConfig::ace(4),
            Box::new(MoveLimitPolicy::default()),
            4,
        );
        let global = numa_repro::apps::measure_once(
            app.as_ref(),
            SimConfig::ace(4),
            Box::new(AllGlobalPolicy),
            4,
        );
        let local = numa_repro::apps::measure_once(
            app.as_ref(),
            SimConfig::ace(1),
            Box::new(MoveLimitPolicy::default()),
            1,
        );
        assert!(
            local.user_secs() <= numa.user_secs() * 1.02,
            "{}: T_local {} vs T_numa {}",
            app.name(),
            local.user_secs(),
            numa.user_secs()
        );
        assert!(
            numa.user_secs() <= global.user_secs() * 1.10,
            "{}: T_numa {} vs T_global {}",
            app.name(),
            numa.user_secs(),
            global.user_secs()
        );
    }
}

/// Bit-for-bit determinism of a full application run, including times,
/// reference counters and protocol statistics.
#[test]
fn full_runs_are_deterministic() {
    let run = || {
        let app = Primes2::new(Scale::Test, DivisorDiscipline::SharedVector);
        let r = numa_repro::apps::measure_once(
            &app,
            SimConfig::small(4),
            Box::new(MoveLimitPolicy::default()),
            4,
        );
        (r.total_user(), r.total_system(), r.refs, r.numa)
    };
    assert_eq!(run(), run());
}

/// The derived (paper-methodology) alpha and the directly measured alpha
/// must agree on which side of 0.5 an application falls — the model is
/// an estimator of the counters.
#[test]
fn derived_alpha_tracks_measured_alpha() {
    for app in [
        Box::new(IMatMult::new(Scale::Test)) as Box<dyn App>,
        Box::new(Gfetch::new(Scale::Test)),
        Box::new(Primes3::new(Scale::Test)),
    ] {
        let row = numa_repro::apps::table3_row(app.as_ref(), 3, 3);
        if let Some(alpha) = row.alpha {
            // The estimator is noisy at tiny scale; require agreement
            // only when the measured value is decisive.
            if row.alpha_measured > 0.7 {
                assert!(
                    alpha > 0.5,
                    "{}: derived {alpha} vs measured {}",
                    row.name,
                    row.alpha_measured
                );
            } else if row.alpha_measured < 0.3 {
                assert!(
                    alpha < 0.5,
                    "{}: derived {alpha} vs measured {}",
                    row.name,
                    row.alpha_measured
                );
            }
        }
    }
}

/// The directory invariants hold after a messy multi-app workload on a
/// shared kernel (two applications run back to back in one simulator).
#[test]
fn invariants_survive_sequential_workloads() {
    let mut sim =
        Simulator::new(SimConfig::small(3), Box::new(MoveLimitPolicy::default()));
    let a = IMatMult::with_dim(12).expect("valid dimension");
    a.run(&mut sim, 3).expect("first app");
    let b = Primes3::with_limit(500);
    b.run(&mut sim, 3).expect("second app");
    sim.with_kernel(|k| k.check_consistency()).expect("directory consistent");
}
