//! Workspace-level integration tests for the `numa-lab` experiment
//! orchestrator: the sweep grid, the worker farm, the aggregation
//! document, and the regression gate, exercised together.

use numa_lab::{diff_documents, GateTolerances, Grid, Placement, Sweep};
use numa_repro::metrics::{parse, validate, Json};

/// The paper grid (the one behind the committed `BENCH_sweep.json`) is
/// 8 apps x 3 placements, expands in grid order, and carries a model
/// row for every application.
#[test]
fn paper_grid_shape_matches_the_evaluation() {
    let grid = Grid::paper();
    let jobs = grid.jobs();
    assert_eq!(jobs.len(), 24);
    assert_eq!(jobs.iter().filter(|j| j.placement == Placement::Numa).count(), 8);
    assert_eq!(jobs.iter().filter(|j| j.placement == Placement::Local).count(), 8);
    assert!(jobs.iter().enumerate().all(|(i, j)| j.id == i));
}

/// Parallel and serial farms must emit byte-identical documents, and
/// the document must satisfy its own validator and schema.
#[test]
fn parallel_sweep_is_deterministic_and_valid() {
    let mut grid = Grid::smoke();
    grid.apps.truncate(1);
    let serial = Sweep::run(grid.clone(), 1, None).unwrap().to_json().to_string_flat();
    let parallel = Sweep::run(grid, 8, None).unwrap().to_json().to_string_flat();
    assert_eq!(serial, parallel);
    validate(&serial).unwrap();
    let doc = parse(&serial).unwrap();
    let Json::Obj(members) = &doc else { panic!("sweep document is an object") };
    assert_eq!(members[0].0, "schema");
    assert!(members.iter().any(|(k, _)| k == "jobs"));
    assert!(members.iter().any(|(k, _)| k == "model"));
}

/// The gate accepts an identical rerun and rejects a perturbed metric.
#[test]
fn gate_passes_identity_and_catches_perturbation() {
    let mut grid = Grid::smoke();
    grid.apps.truncate(1);
    let baseline = Sweep::run(grid, 2, None).unwrap().to_json().to_string_flat();

    let clean = diff_documents(&baseline, &baseline, &GateTolerances::default()).unwrap();
    assert!(clean.passes());
    assert!(clean.deltas.is_empty());

    // Quadruple the first pins counter: far outside the count band.
    let needle = "\"pins\":";
    let at = baseline.find(needle).unwrap() + needle.len();
    let end = at + baseline[at..].find(',').unwrap();
    let pins: i64 = baseline[at..end].parse().unwrap();
    let perturbed =
        format!("{}{}{}", &baseline[..at], pins * 4 + 20, &baseline[end..]);
    let diff = diff_documents(&baseline, &perturbed, &GateTolerances::default()).unwrap();
    assert!(!diff.passes(), "a perturbed counter must fail the gate");
    assert!(diff.violations().next().unwrap().path.ends_with("pins"));
}
