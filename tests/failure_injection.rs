//! Failure injection: exhaustion, protection violations, and wild
//! references must fail loudly and precisely, never corrupt state.

use numa_repro::machine::{CpuId, Machine, NodeId, Prot, TopologyBuilder};
use numa_repro::numa::{AcePmap, AllLocalPolicy, MoveLimitPolicy};
use numa_repro::sim::{Kernel, SimConfig, Simulator};
use numa_repro::vm::{VAddr, VmError};

/// The logical page pool is fixed at boot (the paper calls this out as
/// Mach's one real limitation); with the pageout daemon disabled,
/// exhausting it surfaces as a clean error.
#[test]
fn logical_pool_exhaustion_without_pageout() {
    let mut cfg = TopologyBuilder::small(1).config();
    cfg.global_frames = 4;
    let machine = Machine::new(cfg);
    let pmap = AcePmap::new(Box::new(MoveLimitPolicy::default()));
    let mut k = Kernel::new(machine, pmap);
    k.vm.set_pageout(false);
    let page = k.vm.page_size().bytes() as u64;
    let a = k.alloc(8 * page, Prot::READ_WRITE).expect("virtual space is plentiful");
    for i in 0..4u64 {
        k.store_u32(CpuId(0), a + i * page, 1).expect("within pool");
    }
    let r = k.store_u32(CpuId(0), a + 4 * page, 1);
    assert_eq!(r, Err(VmError::OutOfLogicalMemory));
    // Earlier pages still work and hold their data.
    assert_eq!(k.load_u32(CpuId(0), a).unwrap(), 1);
    k.check_consistency().unwrap();
}

/// With the pageout daemon (on by default) the same pressure is
/// survivable: pages cycle through swap and the working set's data is
/// preserved — even across the NUMA layer's replication and migration.
#[test]
fn pageout_thrashing_preserves_application_data() {
    let mut cfg = SimConfig::small(2);
    cfg.machine.global_frames = 6;
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    let page = 256u64;
    let a = sim.alloc(16 * page, Prot::READ_WRITE);
    for t in 0..2u64 {
        sim.spawn(format!("thrash-{t}"), move |ctx| {
            for round in 0..3u64 {
                for i in 0..16u64 {
                    if i % 2 == t {
                        let addr = a + i * page + round * 8;
                        ctx.write_u32(addr, (1000 * t + 10 * round + i) as u32);
                    }
                }
            }
        });
    }
    sim.run();
    let (pageouts, pageins) = sim.with_kernel(|k| (k.vm.pageouts, k.vm.pageins));
    assert!(pageouts > 0, "pool pressure must trigger pageout");
    assert!(pageins > 0, "revisited pages must page back in");
    for t in 0..2u64 {
        for round in 0..3u64 {
            for i in 0..16u64 {
                if i % 2 == t {
                    let addr = a + i * page + round * 8;
                    let got = sim.with_kernel(|k| k.peek_u32(addr));
                    assert_eq!(got, (1000 * t + 10 * round + i) as u32);
                }
            }
        }
    }
    sim.with_kernel(|k| k.check_consistency()).unwrap();
}

/// Local memory pressure: with tiny local memories the manager evicts
/// victims (reclaim) instead of failing, degrading to global placement
/// only when even that runs dry — and results stay correct.
#[test]
fn local_memory_pressure_falls_back_to_global() {
    let mut cfg = SimConfig::small(2);
    cfg.machine.topology.set_uniform_local_frames(2);
    let mut sim = Simulator::new(cfg, Box::new(AllLocalPolicy));
    let page = 256u64;
    let a = sim.alloc(16 * page, Prot::READ_WRITE);
    sim.spawn("writer", move |ctx| {
        for i in 0..16u64 {
            ctx.write_u32(a + i * page, i as u32);
        }
        for i in 0..16u64 {
            assert_eq!(ctx.read_u32(a + i * page), i as u32);
        }
    });
    let r = sim.run();
    assert!(
        r.numa.reclaims + r.numa.local_pressure_fallbacks > 0,
        "pressure path exercised: {:?}",
        r.numa
    );
    sim.with_kernel(|k| k.check_consistency()).unwrap();
}

/// A reference outside any allocation is the simulated segfault.
#[test]
#[should_panic(expected = "no map entry")]
fn wild_reference_panics_the_thread() {
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    sim.spawn("wild", |ctx| {
        let _ = ctx.read_u32(VAddr(0xdead_0000));
    });
    sim.run();
}

/// Writing a read-only allocation violates the user protection.
#[test]
#[should_panic(expected = "protection violation")]
fn write_to_read_only_region_panics() {
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    let a = sim.alloc(64, Prot::READ);
    sim.spawn("writer", move |ctx| {
        ctx.write_u32(a, 1);
    });
    sim.run();
}

/// Address zero is never handed out and never mapped.
#[test]
#[should_panic(expected = "no map entry")]
fn null_is_never_mapped() {
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    let a = sim.alloc(64, Prot::READ_WRITE);
    assert_ne!(a, VAddr::NULL);
    sim.spawn("null", |ctx| {
        let _ = ctx.read_u32(VAddr::NULL);
    });
    sim.run();
}

/// A panic in one simulated thread stops the run without hanging the
/// others (the engine unwinds them cleanly).
#[test]
fn sibling_threads_survive_engine_shutdown() {
    let result = std::panic::catch_unwind(|| {
        let mut sim =
            Simulator::new(SimConfig::small(2), Box::new(MoveLimitPolicy::default()));
        let a = sim.alloc(1024, Prot::READ_WRITE);
        sim.spawn("bad", |_ctx| panic!("injected fault"));
        sim.spawn("good", move |ctx| {
            for i in 0..1000u64 {
                ctx.write_u32(a + (i % 64) * 4, i as u32);
            }
        });
        sim.run();
    });
    assert!(result.is_err(), "the injected panic must propagate");
    // And the process is still healthy enough to run another simulation.
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    let a = sim.alloc(64, Prot::READ_WRITE);
    sim.spawn("after", move |ctx| ctx.write_u32(a, 7));
    sim.run();
    assert_eq!(sim.with_kernel(|k| k.peek_u32(a)), 7);
}

// ---------------------------------------------------------------------------
// Injected hardware faults: the deterministic fault injector drives bus
// timeouts, bad frames and silent corruption through the NUMA manager's
// recovery paths. All schedules are seeded, so every run is identical.
// ---------------------------------------------------------------------------

use numa_repro::machine::{Access, CopyFault, FaultConfig, MemRegion};
use numa_repro::numa::{FaultEvent, NumaManager};
use numa_repro::vm::LPageId;

/// Transient bus timeouts are retried (with backoff charged as system
/// time) and never change application-visible data.
#[test]
fn bus_timeouts_are_transparent_to_applications() {
    let mut cfg = SimConfig::small(2);
    cfg.machine.faults = FaultConfig {
        seed: 42,
        bus_timeout_rate: 0.2,
        ..FaultConfig::disabled()
    };
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    let page = 256u64;
    let a = sim.alloc(8 * page, Prot::READ_WRITE);
    for t in 0..2u64 {
        sim.spawn(format!("worker-{t}"), move |ctx| {
            for round in 0..4u64 {
                for i in 0..8u64 {
                    let addr = a + i * page + t * 8;
                    ctx.write_u32(addr, (100 * t + 10 * round + i) as u32);
                    assert_eq!(ctx.read_u32(addr), (100 * t + 10 * round + i) as u32);
                }
            }
        });
    }
    let r = sim.run();
    assert!(r.faults.bus_timeouts > 0, "the 20% timeout rate must fire");
    assert!(r.numa.bus_retries > 0, "every timeout is retried");
    // The final data is exactly what the last round wrote.
    for t in 0..2u64 {
        for i in 0..8u64 {
            let got = sim.with_kernel(|k| k.peek_u32(a + i * page + t * 8));
            assert_eq!(got, (100 * t + 30 + i) as u32);
        }
    }
    sim.with_kernel(|k| k.check_consistency()).unwrap();
}

/// A frame that fails its ECC scrub is quarantined and never handed out
/// again, no matter how much allocation pressure follows.
#[test]
fn quarantined_frame_is_never_reallocated() {
    let mut m = Machine::new(TopologyBuilder::small(2).config());
    let mut mgr = NumaManager::new();
    let mut pol = numa_repro::numa::AllLocalPolicy;
    // Find the frame the first local allocation would return, and
    // declare it bad.
    let bad = m.mem.alloc(MemRegion::Local(NodeId(0))).unwrap();
    m.mem.free(bad);
    m.fault.script_bad_frame(bad);
    let lp = LPageId(3);
    mgr.zero_page(lp);
    let g = mgr.request(&mut m, lp, Access::Store, CpuId(0), &mut pol).unwrap();
    assert_ne!(g.frame, bad, "the bad frame must not serve the request");
    assert!(m.mem.is_quarantined(bad));
    assert_eq!(mgr.stats().frame_quarantines, 1);
    assert!(mgr
        .fault_events()
        .contains(&FaultEvent::FrameQuarantined { frame: bad, node: NodeId(0) }));
    // Drain the entire free list: the quarantined frame never reappears.
    let mut drained = Vec::new();
    while let Ok(f) = m.mem.alloc(MemRegion::Local(NodeId(0))) {
        drained.push(f);
    }
    assert!(!drained.contains(&bad), "quarantined frame was re-allocated");
    // And the NUMA-granted frame is accounted for (not in the free list).
    assert!(!drained.contains(&g.frame));
}

/// The same seed produces byte-for-byte the same run: identical NUMA
/// statistics, identical injected-fault counts, identical data.
#[test]
fn same_seed_gives_identical_stats() {
    let run = || {
        let mut cfg = SimConfig::small(2);
        cfg.machine.faults = FaultConfig {
            seed: 7,
            bus_timeout_rate: 0.15,
            corruption_rate: 0.1,
            bad_frame_rate: 0.05,
            ..FaultConfig::disabled()
        };
        let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
        let page = 256u64;
        let a = sim.alloc(8 * page, Prot::READ_WRITE);
        for t in 0..2u64 {
            sim.spawn(format!("worker-{t}"), move |ctx| {
                for i in 0..8u64 {
                    ctx.write_u32(a + i * page + t * 8, (t * 1000 + i) as u32);
                    let _ = ctx.read_u32(a + ((i + 3) % 8) * page + t * 8);
                }
            });
        }
        let r = sim.run();
        let data: Vec<u32> =
            (0..8u64).map(|i| sim.with_kernel(|k| k.peek_u32(a + i * page))).collect();
        sim.with_kernel(|k| k.check_consistency()).unwrap();
        (r.numa, r.faults, r.refs, data)
    };
    let (numa1, faults1, refs1, data1) = run();
    let (numa2, faults2, refs2, data2) = run();
    assert_eq!(numa1, numa2, "NUMA stats must be deterministic");
    assert_eq!(faults1, faults2, "injected faults must be deterministic");
    assert_eq!(refs1, refs2);
    assert_eq!(data1, data2);
    assert!(faults1.any(), "the chosen rates must actually inject faults");
}

/// With every fault rate zero the injector is inert: a run is identical
/// to one with the fault subsystem left at its default, seed included.
#[test]
fn zero_rates_change_nothing() {
    let run = |faults: FaultConfig| {
        let mut cfg = SimConfig::small(2);
        cfg.machine.faults = faults;
        let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
        let page = 256u64;
        let a = sim.alloc(4 * page, Prot::READ_WRITE);
        sim.spawn("w", move |ctx| {
            for i in 0..4u64 {
                ctx.write_u32(a + i * page, i as u32);
                assert_eq!(ctx.read_u32(a + i * page), i as u32);
            }
        });
        let r = sim.run();
        let data: Vec<u32> =
            (0..4u64).map(|i| sim.with_kernel(|k| k.peek_u32(a + i * page))).collect();
        (r.numa, r.refs, r.cpu_times, data)
    };
    let baseline = run(FaultConfig::disabled());
    let zeroed = run(FaultConfig { seed: 0xdead_beef, ..FaultConfig::disabled() });
    assert_eq!(baseline.0, zeroed.0, "stats must match with all rates zero");
    assert_eq!(baseline.1, zeroed.1);
    assert_eq!(baseline.2, zeroed.2, "virtual time must match exactly");
    assert_eq!(baseline.3, zeroed.3);
}

/// A fault storm during victim flush: every attempt to sync the victim
/// back to global times out for good, so no eviction ever succeeds —
/// the victim is left intact with its data, and once the reclaim
/// budget is spent the original request completes via degrade-to-global
/// instead of failing.
#[test]
fn faults_during_victim_flush_leave_the_victim_intact_and_degrade_the_request() {
    let cfg = TopologyBuilder::small(2).local_frames(1).config();
    let psize = cfg.page_size.bytes();
    let mut m = Machine::new(cfg);
    let mut mgr = NumaManager::new();
    let mut pol = AllLocalPolicy;
    let (a, b) = (LPageId(0), LPageId(1));
    mgr.zero_page(a);
    mgr.zero_page(b);
    let cpu = CpuId(0);

    // Dirty page `a` in cpu0's only local frame.
    let g = mgr.request(&mut m, a, Access::Store, cpu, &mut pol).unwrap();
    let pattern: Vec<u8> = (0..psize).map(|i| (i * 31 + 7) as u8).collect();
    m.mem.write_bytes(g.frame, 0, &pattern);

    // Each eviction attempt burns its full copy-retry budget on the
    // victim's sync and fails; script enough timeouts to exhaust every
    // reclaim attempt the request is allowed.
    let sync_attempts = m.fault.config().max_copy_retries + 1;
    let budget = mgr.max_reclaim_attempts();
    for _ in 0..budget * sync_attempts {
        m.fault.script_copy_fault(CopyFault::BusTimeout);
    }

    let grant = mgr.request(&mut m, b, Access::Store, cpu, &mut pol).unwrap();
    let s = mgr.stats();
    assert_eq!(s.reclaims, 0, "no eviction may be recorded as successful: {s:?}");
    assert_eq!(s.bus_retries, u64::from(budget * sync_attempts), "every timeout retried: {s:?}");
    assert_eq!(s.degradations, 1, "the request degrades exactly once: {s:?}");
    assert_eq!(s.local_pressure_fallbacks, 1);
    assert!(mgr.fault_events().contains(&FaultEvent::DegradedToGlobal { lpage: b, cpu }));

    // The degraded grant is usable...
    m.mem.write_u32(grant.frame, 0, 0xB00B);
    assert_eq!(m.mem.read_u32(grant.frame, 0), 0xB00B);
    // ...and the victim kept both its local copy and its bytes.
    let g = mgr.request(&mut m, a, Access::Fetch, cpu, &mut pol).unwrap();
    let mut got = vec![0u8; psize];
    m.mem.read_bytes(g.frame, 0, &mut got);
    assert_eq!(got, pattern, "the unsynced victim must be left intact");
    mgr.check_invariants(&mut m, a).unwrap();
    mgr.check_invariants(&mut m, b).unwrap();
}

/// The composite storm the pressure path must survive: the request's
/// allocation trips over a bad frame (quarantined on its first scrub),
/// reclaim steps in but every victim flush dies on the bus, and the
/// request still completes — via degrade-to-global — with the victim
/// and its data untouched.
#[test]
fn bad_frame_plus_flush_faults_quarantine_and_degrade_in_one_request() {
    let cfg = TopologyBuilder::small(2).local_frames(2).config();
    let psize = cfg.page_size.bytes();
    let mut m = Machine::new(cfg);
    let mut mgr = NumaManager::new();
    let mut pol = AllLocalPolicy;
    let (a, b) = (LPageId(0), LPageId(1));
    mgr.zero_page(a);
    mgr.zero_page(b);
    let cpu = CpuId(0);

    // The free list is a stack: after freeing in reverse order the
    // manager's first allocation gets `good`, its second gets `doomed`
    // — which fails its first ECC scrub, per the script below.
    let node = NodeId(0);
    let good = m.mem.alloc(MemRegion::Local(node)).unwrap();
    let doomed = m.mem.alloc(MemRegion::Local(node)).unwrap();
    m.mem.free(doomed);
    m.mem.free(good);
    m.fault.script_bad_frame(doomed);

    let g = mgr.request(&mut m, a, Access::Store, cpu, &mut pol).unwrap();
    assert_eq!(g.frame, good);
    let pattern: Vec<u8> = (0..psize).map(|i| (i * 13 + 5) as u8).collect();
    m.mem.write_bytes(good, 0, &pattern);

    // And every flush of the only reclaim candidate times out for good.
    let sync_attempts = m.fault.config().max_copy_retries + 1;
    for _ in 0..mgr.max_reclaim_attempts() * sync_attempts {
        m.fault.script_copy_fault(CopyFault::BusTimeout);
    }

    mgr.request(&mut m, b, Access::Fetch, cpu, &mut pol).unwrap();
    let s = mgr.stats();
    assert_eq!(s.frame_quarantines, 1, "{s:?}");
    assert!(m.mem.is_quarantined(doomed), "the bad frame is retired for good");
    assert_eq!(s.reclaims, 0, "no victim flush may succeed: {s:?}");
    assert_eq!(s.degradations, 1, "out of options, the request degrades: {s:?}");
    assert!(mgr.fault_events().contains(&FaultEvent::FrameQuarantined { frame: doomed, node }));
    assert!(mgr.fault_events().contains(&FaultEvent::DegradedToGlobal { lpage: b, cpu }));

    // The victim kept its local copy and every byte of its data.
    let g = mgr.request(&mut m, a, Access::Fetch, cpu, &mut pol).unwrap();
    assert_eq!(g.frame, good, "the victim's local copy was never taken");
    let mut got = vec![0u8; psize];
    m.mem.read_bytes(g.frame, 0, &mut got);
    assert_eq!(got, pattern);
    mgr.check_invariants(&mut m, a).unwrap();
    mgr.check_invariants(&mut m, b).unwrap();
}

// ---------------------------------------------------------------------------
// Hard component loss racing the memory daemons: a node dies while the
// synchronous reclaim sweep and the pressure daemon are mid-flight. The
// recovery protocol must compose with both without deadlock, double
// free, or inconsistent directories.
// ---------------------------------------------------------------------------

use numa_repro::machine::{HardFault, Ns};

/// A node goes offline while its processor is deep in a reclaim-heavy
/// streaming workload (local frames far smaller than the working set).
/// The sweep must not resurrect the dead free list; every subsequent
/// LOCAL placement for the dead node degrades to global, the run
/// completes with typed counters, and the audit passes.
#[test]
fn node_offline_racing_reclaim_sweep_recovers_cleanly() {
    let mut cfg = SimConfig::small(2);
    cfg.machine.topology.set_uniform_local_frames(3);
    cfg.machine.faults = FaultConfig {
        hard_faults: vec![HardFault::NodeOffline { node: NodeId(1), vt: Ns::from_us(400) }],
        ..FaultConfig::disabled()
    };
    let mut sim = Simulator::new(cfg, Box::new(AllLocalPolicy));
    let page = 256u64;
    let a = sim.alloc(24 * page, Prot::READ_WRITE);
    for t in 0..2u64 {
        sim.spawn(format!("stream-{t}"), move |ctx| {
            for round in 0..3u64 {
                for i in 0..12u64 {
                    let addr = a + (t * 12 + i) * page;
                    ctx.write_u32(addr, (round * 100 + t * 1000 + i) as u32);
                    ctx.compute(Ns::from_us(20));
                }
            }
        });
    }
    let r = sim.run();
    assert_eq!(r.numa.nodes_offlined, 1);
    assert!(
        r.numa.reclaims + r.numa.local_pressure_fallbacks > 0,
        "the tiny local memory must force reclaim around the loss: {:?}",
        r.numa
    );
    assert!(
        r.numa.dead_node_fallbacks > 0,
        "the survivor thread on the dead node keeps degrading to global: {:?}",
        r.numa
    );
    // The healthy node's data is untouched by the other node's death
    // (the recovery protocol types losses; it never corrupts survivors).
    for i in 0..12u64 {
        assert_eq!(
            sim.with_kernel(|k| k.peek_u32(a + i * page)),
            (200 + i) as u32,
            "page {i} of the healthy node lost its final-round value"
        );
    }
    sim.with_kernel(|k| k.check_consistency()).unwrap();
}

/// A node dies in a pressure-driven run where the daemon is actively
/// flushing cold replicas every tick. The daemon must skip the dead
/// node's free list, recovery and flushing interleave without double
/// frees, and the whole composition is byte-deterministic.
#[test]
fn node_offline_racing_pressure_daemon_is_deterministic() {
    let run = |_: ()| {
        let mut cfg = SimConfig::small(3);
        cfg.machine.topology.set_uniform_local_frames(4);
        cfg.machine.faults = FaultConfig {
            hard_faults: vec![HardFault::NodeOffline {
                node: NodeId(1),
                // Just past the first daemon tick (1 ms in the small
                // preset) so flush and recovery genuinely interleave.
                vt: Ns::from_us(1100),
            }],
            ..FaultConfig::disabled()
        };
        let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
        let page = 256u64;
        let a = sim.alloc(16 * page, Prot::READ_WRITE);
        for t in 0..3u64 {
            sim.spawn(format!("reader-{t}"), move |ctx| {
                for round in 0..4u64 {
                    for i in 0..16u64 {
                        // Shared read-mostly sweep: every node replicates
                        // every page, keeping free lists near the
                        // watermark so the daemon has flushing to do.
                        let _ = ctx.read_u32(a + i * page);
                        if i % 4 == t {
                            ctx.write_u32(a + i * page + 4 + t * 8, (round * 10 + i) as u32);
                        }
                        ctx.compute(Ns::from_us(15));
                    }
                }
            });
        }
        let r = sim.run();
        sim.with_kernel(|k| k.check_consistency()).unwrap();
        (r.cpu_times.clone(), r.refs, r.numa, r.bus)
    };
    let first = run(());
    let second = run(());
    assert_eq!(first, second, "recovery racing the daemon must be deterministic");
    assert_eq!(first.2.nodes_offlined, 1);
    assert!(
        first.2.pages_rehomed + first.2.pages_lost > 0,
        "the dead node held replicas mid-flush: {:?}",
        first.2
    );
}

/// End-to-end recovery: a scripted schedule of bus timeouts, one bad
/// frame and one corrupted copy, all hit during normal paging activity.
/// The application's data survives, the recovery counters record each
/// action, and the full directory/MMU consistency audit passes.
#[test]
fn scripted_fault_storm_recovers_end_to_end() {
    let mut sim =
        Simulator::new(SimConfig::small(2), Box::new(MoveLimitPolicy::default()));
    let page = 256u64;
    let a = sim.alloc(2 * page, Prot::READ_WRITE);
    // Phase 1 (fault-free): a writer dirties both pages on one cpu.
    sim.spawn("writer", move |ctx| {
        ctx.write_u32(a, 0x1111);
        ctx.write_u32(a + page, 0x2222);
    });
    sim.run();
    // Inject the storm: the next bus-crossing copy times out, the retry
    // is silently corrupted (caught by checksum, refetched), and the
    // reader cpu's first local frame fails its scrub.
    sim.with_kernel(|k| {
        k.machine.fault.script_copy_fault(CopyFault::BusTimeout);
        k.machine.fault.script_copy_fault(CopyFault::Corruption);
        let n1 = NodeId(1);
        let bad = k.machine.mem.alloc(MemRegion::Local(n1)).unwrap();
        k.machine.mem.free(bad);
        k.machine.fault.script_bad_frame(bad);
    });
    // Phase 2: a reader on the other cpu pulls both pages over, forcing
    // sync + replication copies through the scripted faults.
    sim.spawn("reader", move |ctx| {
        assert_eq!(ctx.read_u32(a), 0x1111);
        assert_eq!(ctx.read_u32(a + page), 0x2222);
    });
    let r = sim.run();
    assert!(r.faults.bus_timeouts >= 1);
    assert!(r.faults.corruptions >= 1);
    assert!(r.faults.bad_frames >= 1);
    assert!(r.numa.bus_retries >= 1, "timeout was retried");
    assert!(r.numa.corruptions_detected >= 1, "checksum caught the corruption");
    assert!(r.numa.replica_refetches >= 1, "corrupted copy was refetched");
    assert!(r.numa.frame_quarantines >= 1, "bad frame was quarantined");
    // The data is still exactly what the writer stored.
    assert_eq!(sim.with_kernel(|k| k.peek_u32(a)), 0x1111);
    assert_eq!(sim.with_kernel(|k| k.peek_u32(a + page)), 0x2222);
    // Directory invariants AND the directory/MMU cross-check hold.
    sim.with_kernel(|k| k.check_consistency()).unwrap();
}
