//! Failure injection: exhaustion, protection violations, and wild
//! references must fail loudly and precisely, never corrupt state.

use numa_repro::machine::{CpuId, Machine, MachineConfig, Prot};
use numa_repro::numa::{AcePmap, AllLocalPolicy, MoveLimitPolicy};
use numa_repro::sim::{Kernel, SimConfig, Simulator};
use numa_repro::vm::{VAddr, VmError};

/// The logical page pool is fixed at boot (the paper calls this out as
/// Mach's one real limitation); with the pageout daemon disabled,
/// exhausting it surfaces as a clean error.
#[test]
fn logical_pool_exhaustion_without_pageout() {
    let mut cfg = MachineConfig::small(1);
    cfg.global_frames = 4;
    let machine = Machine::new(cfg);
    let pmap = AcePmap::new(Box::new(MoveLimitPolicy::default()));
    let mut k = Kernel::new(machine, pmap);
    k.vm.set_pageout(false);
    let page = k.vm.page_size().bytes() as u64;
    let a = k.alloc(8 * page, Prot::READ_WRITE).expect("virtual space is plentiful");
    for i in 0..4u64 {
        k.store_u32(CpuId(0), a + i * page, 1).expect("within pool");
    }
    let r = k.store_u32(CpuId(0), a + 4 * page, 1);
    assert_eq!(r, Err(VmError::OutOfLogicalMemory));
    // Earlier pages still work and hold their data.
    assert_eq!(k.load_u32(CpuId(0), a).unwrap(), 1);
    k.check_consistency().unwrap();
}

/// With the pageout daemon (on by default) the same pressure is
/// survivable: pages cycle through swap and the working set's data is
/// preserved — even across the NUMA layer's replication and migration.
#[test]
fn pageout_thrashing_preserves_application_data() {
    let mut cfg = SimConfig::small(2);
    cfg.machine.global_frames = 6;
    let mut sim = Simulator::new(cfg, Box::new(MoveLimitPolicy::default()));
    let page = 256u64;
    let a = sim.alloc(16 * page, Prot::READ_WRITE);
    for t in 0..2u64 {
        sim.spawn(format!("thrash-{t}"), move |ctx| {
            for round in 0..3u64 {
                for i in 0..16u64 {
                    if i % 2 == t {
                        let addr = a + i * page + round * 8;
                        ctx.write_u32(addr, (1000 * t + 10 * round + i) as u32);
                    }
                }
            }
        });
    }
    sim.run();
    let (pageouts, pageins) = sim.with_kernel(|k| (k.vm.pageouts, k.vm.pageins));
    assert!(pageouts > 0, "pool pressure must trigger pageout");
    assert!(pageins > 0, "revisited pages must page back in");
    for t in 0..2u64 {
        for round in 0..3u64 {
            for i in 0..16u64 {
                if i % 2 == t {
                    let addr = a + i * page + round * 8;
                    let got = sim.with_kernel(|k| k.peek_u32(addr));
                    assert_eq!(got, (1000 * t + 10 * round + i) as u32);
                }
            }
        }
    }
    sim.with_kernel(|k| k.check_consistency()).unwrap();
}

/// Local memory pressure: with tiny local memories the policy falls
/// back to global placement instead of failing, and results stay
/// correct.
#[test]
fn local_memory_pressure_falls_back_to_global() {
    let mut cfg = SimConfig::small(2);
    cfg.machine.local_frames = 2;
    let mut sim = Simulator::new(cfg, Box::new(AllLocalPolicy));
    let page = 256u64;
    let a = sim.alloc(16 * page, Prot::READ_WRITE);
    sim.spawn("writer", move |ctx| {
        for i in 0..16u64 {
            ctx.write_u32(a + i * page, i as u32);
        }
        for i in 0..16u64 {
            assert_eq!(ctx.read_u32(a + i * page), i as u32);
        }
    });
    let r = sim.run();
    assert!(r.numa.local_pressure_fallbacks > 0, "pressure path exercised");
    sim.with_kernel(|k| k.check_consistency()).unwrap();
}

/// A reference outside any allocation is the simulated segfault.
#[test]
#[should_panic(expected = "no map entry")]
fn wild_reference_panics_the_thread() {
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    sim.spawn("wild", |ctx| {
        let _ = ctx.read_u32(VAddr(0xdead_0000));
    });
    sim.run();
}

/// Writing a read-only allocation violates the user protection.
#[test]
#[should_panic(expected = "protection violation")]
fn write_to_read_only_region_panics() {
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    let a = sim.alloc(64, Prot::READ);
    sim.spawn("writer", move |ctx| {
        ctx.write_u32(a, 1);
    });
    sim.run();
}

/// Address zero is never handed out and never mapped.
#[test]
#[should_panic(expected = "no map entry")]
fn null_is_never_mapped() {
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    let a = sim.alloc(64, Prot::READ_WRITE);
    assert_ne!(a, VAddr::NULL);
    sim.spawn("null", |ctx| {
        let _ = ctx.read_u32(VAddr::NULL);
    });
    sim.run();
}

/// A panic in one simulated thread stops the run without hanging the
/// others (the engine unwinds them cleanly).
#[test]
fn sibling_threads_survive_engine_shutdown() {
    let result = std::panic::catch_unwind(|| {
        let mut sim =
            Simulator::new(SimConfig::small(2), Box::new(MoveLimitPolicy::default()));
        let a = sim.alloc(1024, Prot::READ_WRITE);
        sim.spawn("bad", |_ctx| panic!("injected fault"));
        sim.spawn("good", move |ctx| {
            for i in 0..1000u64 {
                ctx.write_u32(a + (i % 64) * 4, i as u32);
            }
        });
        sim.run();
    });
    assert!(result.is_err(), "the injected panic must propagate");
    // And the process is still healthy enough to run another simulation.
    let mut sim =
        Simulator::new(SimConfig::small(1), Box::new(MoveLimitPolicy::default()));
    let a = sim.alloc(64, Prot::READ_WRITE);
    sim.spawn("after", move |ctx| ctx.write_u32(a, 7));
    sim.run();
    assert_eq!(sim.with_kernel(|k| k.peek_u32(a)), 7);
}
